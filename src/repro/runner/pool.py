"""Parallel job execution: process pool with cache, retry and resume.

:func:`execute` takes a list of job specs (:mod:`repro.runner.jobs`) and
returns their results **in spec order**, regardless of how execution was
scheduled.  Three execution concerns are layered on top of the raw pool:

* **Serial fallback** — ``jobs=1`` runs every job in-process with zero
  extra machinery (no pickling, no subprocesses), which is also the mode
  the test suite uses for reference results.
* **Result cache / resume** — with a ``cache_dir``, every completed job
  is persisted through :class:`~repro.runner.cache.ResultCache` as it
  finishes; with ``resume=True``, cached results are loaded up front and
  only the missing jobs execute.  An interrupted sweep therefore resumes
  from completed jobs instead of restarting.
* **Fault tolerance** — a worker process dying (OOM-kill, segfault,
  ``os._exit``) breaks the pool; the executor counts the crash, rebuilds
  the pool and re-runs only the unfinished jobs, up to ``retries``
  times.  A stall watchdog (``timeout`` seconds without any job
  completing) tears the pool down the same way.  ``KeyboardInterrupt``
  cancels the jobs that have not started and re-raises — results already
  completed are in the cache, so Ctrl-C + ``resume`` loses nothing.

Observability: the parent times the whole call (``runner.sweep``) and
counts ``runner.jobs`` / ``runner.jobs_completed`` / ``runner.cache_hits``
/ ``runner.cache_misses`` / ``runner.worker_crashes`` / ``runner.retries``.
Each worker runs its job under a private
:class:`~repro.obs.MetricsRegistry` (which also captures the job's inner
instrumentation, e.g. ``placement.online.place`` and the per-job
``runner.job`` phase timer) and ships it back with the result; the
parent merges every worker registry into the active one — histograms and
timers merge by addition, so pooled worker metrics are lossless.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro import obs
from repro.runner.cache import MISS, ResultCache

__all__ = ["execute", "RunnerError", "WorkerCrashError", "StallTimeoutError"]


class RunnerError(RuntimeError):
    """Base class for executor failures."""


class WorkerCrashError(RunnerError):
    """A worker process died and the retry budget is exhausted."""


class StallTimeoutError(RunnerError):
    """No job completed within the stall timeout."""


# ----------------------------------------------------------------------
# Worker-side state and entry point
# ----------------------------------------------------------------------

#: Worlds materialized in this process, keyed by EvaluationSetting.
_worlds: dict[Any, Any] = {}
#: World installed by the pool initializer (explicit-world mode).
_explicit_world: Any = None

#: Test hook: when this env var names a path and the file does not exist
#: yet, the worker creates it and dies with ``os._exit`` — a
#: deterministic stand-in for an OOM-kill, used by the crash-safety
#: tests.  The sentinel file makes the crash happen exactly once, so the
#: retry path is exercised end-to-end.
CRASH_ONCE_ENV = "REPRO_RUNNER_CRASH_ONCE"


def _worker_init(world: Any) -> None:
    global _explicit_world
    _explicit_world = world


def _world_for(spec: Any) -> Any:
    """The world a spec runs against (explicit, or built from its setting)."""
    if _explicit_world is not None:
        return _explicit_world
    setting = spec.setting
    if setting is None:
        return None
    world = _worlds.get(setting)
    if world is None:
        world = _worlds[setting] = setting.build()
    return world


def _run_job(spec: Any) -> tuple[Any, obs.MetricsRegistry]:
    """Worker entry point: execute one spec under a private registry."""
    crash_sentinel = os.environ.get(CRASH_ONCE_ENV)
    if crash_sentinel and not os.path.exists(crash_sentinel):
        with open(crash_sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(17)
    local = obs.MetricsRegistry()
    with obs.observe(local, obs.NULL_TRACER):
        with local.phase("runner.job"):
            result = spec.execute(_world_for(spec))
    return result, local


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------

_UNSET = object()


def execute(specs: Sequence[Any], *,
            jobs: int | None = 1,
            cache_dir: str | None = None,
            resume: bool = False,
            timeout: float | None = None,
            retries: int = 2,
            world: Any = None) -> list[Any]:
    """Run every spec and return the results in spec order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None`` means ``os.cpu_count()``.
    cache_dir:
        When set, completed jobs are persisted here as they finish.
    resume:
        Load cached results before executing; only misses run.  Requires
        ``cache_dir``.
    timeout:
        Stall watchdog, in seconds: if no job completes for this long,
        the pool is torn down and the unfinished jobs are retried (the
        jobs of one sweep are homogeneous, so a stall this long means
        some job blew its budget).  ``None`` disables the watchdog.
    retries:
        How many pool rebuilds (after worker crashes or stalls) to
        attempt before giving up.
    world:
        Explicit ``(matrix, coords, heights)`` world for specs that do
        not carry a setting (:func:`repro.analysis.experiment.
        run_comparison` uses this).  Shipped to each worker once via the
        pool initializer.
    """
    if resume and cache_dir is None:
        raise ValueError("resume=True requires a cache_dir")
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError("jobs must be >= 1 (or None for cpu_count)")
    if retries < 0:
        raise ValueError("retries must be >= 0")

    registry = obs.get_registry()
    cache = ResultCache(cache_dir) if cache_dir else None
    results: list[Any] = [_UNSET] * len(specs)

    with registry.phase("runner.sweep"):
        registry.counter("runner.jobs").inc(len(specs))
        remaining: list[int] = []
        for i, spec in enumerate(specs):
            if cache is not None and resume:
                hit = cache.get(spec)
                if hit is not MISS:
                    results[i] = hit
                    registry.counter("runner.cache_hits").inc()
                    continue
                registry.counter("runner.cache_misses").inc()
            remaining.append(i)

        if jobs == 1:
            _execute_serial(specs, remaining, world, cache, results, registry)
        else:
            _execute_pool(specs, remaining, jobs, world, cache, results,
                          registry, timeout, retries)

    missing = [i for i, r in enumerate(results) if r is _UNSET]
    if missing:  # pragma: no cover - defensive; all paths fill or raise
        raise RunnerError(f"jobs {missing} produced no result")
    return results


def _record(i: int, result: Any, specs: Sequence[Any], cache, results,
            registry) -> None:
    results[i] = result
    if cache is not None:
        cache.put(specs[i], result)
    registry.counter("runner.jobs_completed").inc()


def _execute_serial(specs, remaining, world, cache, results, registry):
    for i in remaining:
        with registry.phase("runner.job"):
            result = specs[i].execute(world if world is not None
                                      else _world_for(specs[i]))
        _record(i, result, specs, cache, results, registry)


def _execute_pool(specs, remaining, jobs, world, cache, results, registry,
                  timeout, retries):
    attempts = 0
    while remaining:
        try:
            _pool_round(specs, remaining, jobs, world, cache, results,
                        registry, timeout)
        except (BrokenProcessPool, StallTimeoutError) as exc:
            crashed = isinstance(exc, BrokenProcessPool)
            registry.counter("runner.worker_crashes"
                             if crashed else "runner.stalls").inc()
            attempts += 1
            if attempts > retries:
                if crashed:
                    raise WorkerCrashError(
                        f"worker crashed and {retries} retries exhausted "
                        f"({len(remaining)} jobs unfinished)") from exc
                raise
            registry.counter("runner.retries").inc()
        remaining = [i for i in remaining if results[i] is _UNSET]


def _collect_done(done, futures, specs, cache, results, registry) -> None:
    """Record every successfully completed future; re-raise pool breakage
    only after salvaging the batch's good results."""
    broken: BrokenProcessPool | None = None
    for future in done:
        try:
            result, worker_registry = future.result()
        except BrokenProcessPool as exc:
            broken = exc
            continue
        registry.merge(worker_registry)
        _record(futures[future], result, specs, cache, results, registry)
    if broken is not None:
        raise broken


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be wedged."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_round(specs, remaining, jobs, world, cache, results, registry,
                timeout):
    """One pool lifetime; records whatever completes before any failure.

    The pool is managed by hand (no ``with``) because
    ``ProcessPoolExecutor.__exit__`` waits for running jobs — with a
    wedged worker that wait never returns, so the stall watchdog must be
    able to terminate the worker processes instead.
    """
    max_workers = min(jobs, len(remaining)) or 1
    pool = ProcessPoolExecutor(max_workers=max_workers,
                               initializer=_worker_init,
                               initargs=(world,))
    try:
        futures = {pool.submit(_run_job, specs[i]): i for i in remaining}
        not_done = set(futures)
        try:
            while not_done:
                done, not_done = wait(not_done, timeout=timeout,
                                      return_when=FIRST_COMPLETED)
                if not done:
                    _terminate_pool(pool)
                    raise StallTimeoutError(
                        f"no job completed within {timeout}s "
                        f"({len(not_done)} in flight)")
                _collect_done(done, futures, specs, cache, results, registry)
        except KeyboardInterrupt:
            # Graceful drain: cancel everything not yet started, give
            # in-flight jobs a bounded window to finish (their results
            # land in the cache), then hard-stop and re-raise.
            cancelled = {f for f in not_done if f.cancel()}
            in_flight = not_done - cancelled
            if in_flight:
                done, straggling = wait(in_flight,
                                        timeout=_DRAIN_SECONDS)
                try:
                    _collect_done(done, futures, specs, cache, results,
                                  registry)
                except BrokenProcessPool:
                    pass
            _terminate_pool(pool)
            raise
        pool.shutdown(wait=True)
    except BrokenProcessPool:
        pool.shutdown(wait=False, cancel_futures=True)
        raise


#: How long a Ctrl-C waits for in-flight jobs before hard-stopping.
_DRAIN_SECONDS = 10.0
