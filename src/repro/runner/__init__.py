"""repro.runner — parallel experiment orchestration.

The paper's evaluation is a grid of independent seeded cells (Section
IV-A: 30 runs per sweep point, four strategies, three figures).  This
subsystem executes that grid at whatever parallelism the hardware
offers, without changing a single result bit:

* :mod:`repro.runner.jobs` — the job model: each *(sweep point,
  strategy, run index)* cell is a self-describing, picklable spec whose
  random streams derive from :class:`numpy.random.SeedSequence` keyed by
  the cell's identity, so results are bit-identical regardless of worker
  count or scheduling order.
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  (SHA-256 of the job config + code-version salt, atomic writes), which
  turns interrupted sweeps into resumable ones.
* :mod:`repro.runner.pool` / :mod:`repro.runner.workers` — the
  executor: a warm pool of persistent worker processes fed chunked job
  batches (auto-tuned size, pull-on-idle load leveling), zero-copy
  shared-memory world transfer, per-worker crash replacement with
  bounded retry, a stall watchdog, KeyboardInterrupt draining, and
  per-chunk metrics registries merged back into the active one.
* :mod:`repro.runner.sweep` — declarative sweep specs (JSON/TOML) for
  the ``repro sweep`` CLI subcommand.

See ``docs/runner.md`` for the seeding scheme, cache-key definition and
resume semantics.
"""

from repro.runner.cache import CACHE_SCHEMA, MISS, ResultCache, cache_key
from repro.runner.jobs import (
    ChunkResult,
    JobChunk,
    JobSpec,
    PlacementRunSpec,
    STRATEGY_KINDS,
    Table2Spec,
    as_job_strategy,
    build_strategy,
    seed_sequence,
    strategy_spec,
)
from repro.runner.pool import (
    RunnerError,
    StallTimeoutError,
    WorkerCrashError,
    execute,
)
from repro.runner.sweep import (
    SWEEP_KINDS,
    SweepSpec,
    load_sweep_spec,
    run_sweep,
)

__all__ = [
    # jobs
    "JobSpec",
    "JobChunk",
    "ChunkResult",
    "PlacementRunSpec",
    "Table2Spec",
    "STRATEGY_KINDS",
    "as_job_strategy",
    "build_strategy",
    "seed_sequence",
    "strategy_spec",
    # cache
    "CACHE_SCHEMA",
    "MISS",
    "ResultCache",
    "cache_key",
    # pool
    "execute",
    "RunnerError",
    "StallTimeoutError",
    "WorkerCrashError",
    # sweep
    "SWEEP_KINDS",
    "SweepSpec",
    "load_sweep_spec",
    "run_sweep",
]
