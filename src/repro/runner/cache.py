"""Content-addressed, crash-safe result cache for experiment jobs.

Each completed job is stored as one small JSON file named by the SHA-256
of the job's canonical description (:meth:`~repro.runner.jobs.JobSpec.
payload`) plus a code-version salt.  The key is a pure function of the
job's *configuration* — never of when or where it ran — so an
interrupted sweep can resume from every job that finished, and two
machines running the same sweep address the same entries.

Crash safety comes from the write protocol: entries are written to a
temporary file in the cache directory and published with
:func:`os.replace` (atomic on POSIX), so a killed process can leave at
most an orphaned temp file, never a torn entry.  Reads treat missing,
torn or schema-mismatched files as misses — a corrupt cache degrades to
recomputation, never to wrong results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Iterable

__all__ = ["ResultCache", "cache_key", "CACHE_SCHEMA", "code_salt"]

#: Bumped whenever the cache entry layout or job semantics change.
CACHE_SCHEMA = "repro.runner/v1"


def code_salt() -> str:
    """The code-version salt mixed into every cache key.

    Combines the cache schema with the package version, so upgrading
    either invalidates old entries instead of silently reusing results
    computed by different code.
    """
    import repro
    return f"{CACHE_SCHEMA}:{getattr(repro, '__version__', 'unknown')}"


def cache_key(spec: Any, salt: str | None = None) -> str:
    """SHA-256 hex key of one job spec (config + code-version salt)."""
    material = {"salt": salt if salt is not None else code_salt(),
                "spec": spec.payload()}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _encode_result(result: Any) -> Any:
    """JSON-able form of a job result (floats and Table2Row today)."""
    from dataclasses import asdict, is_dataclass
    if isinstance(result, (int, float)):
        return float(result)
    if is_dataclass(result):
        return {"__dataclass__": type(result).__name__, **asdict(result)}
    raise TypeError(f"cannot cache result of type {type(result).__name__}")


def _decode_result(encoded: Any) -> Any:
    if isinstance(encoded, dict) and "__dataclass__" in encoded:
        name = encoded["__dataclass__"]
        fields = {k: v for k, v in encoded.items() if k != "__dataclass__"}
        if name == "Table2Row":
            from repro.analysis.experiment import Table2Row
            return Table2Row(**fields)
        if name == "ChaosRunResult":
            from repro.chaos.harness import ChaosRunResult
            fields["final_sites"] = tuple(fields["final_sites"])
            return ChaosRunResult(**fields)
        raise ValueError(f"unknown cached result type {name!r}")
    return float(encoded)


#: Sentinel distinguishing "cache miss" from a legitimately falsy result.
MISS = object()


class ResultCache:
    """A directory of content-addressed job results.

    >>> import tempfile
    >>> from repro.runner.jobs import Table2Spec
    >>> spec = Table2Spec(n_accesses=10, k=2, m=3)
    >>> with tempfile.TemporaryDirectory() as d:
    ...     cache = ResultCache(d)
    ...     cache.get(spec) is MISS
    ...     _ = cache.put(spec, 12.5)
    ...     cache.get(spec)
    ...     len(cache)
    True
    12.5
    1
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directories small on huge sweeps.
        return os.path.join(self.directory, key[:2], key + ".json")

    def get(self, spec: Any) -> Any:
        """The cached result for ``spec``, or :data:`MISS`."""
        path = self._path(cache_key(spec))
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return MISS
        if entry.get("schema") != CACHE_SCHEMA:
            return MISS
        try:
            return _decode_result(entry["result"])
        except (KeyError, TypeError, ValueError):
            return MISS

    def _write_entry(self, spec: Any, result: Any,
                     fsync_file: bool = True) -> str:
        key = cache_key(spec)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": spec.payload(),
            "result": _encode_result(result),
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
                handle.flush()
                if fsync_file:
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    def put(self, spec: Any, result: Any) -> str:
        """Atomically store ``result`` for ``spec``; returns the key."""
        return self._write_entry(spec, result, fsync_file=True)

    def put_many(self, pairs: Iterable[tuple[Any, Any]]) -> list[str]:
        """Store a batch of ``(spec, result)`` pairs with one fsync pass.

        The chunked executor lands a whole chunk of results at once;
        paying one ``fsync`` per 4 ms job would hand the dispatch
        savings straight back to the filesystem.  ``put_many`` writes
        every entry (temp file + atomic ``os.replace``, exactly like
        :meth:`put`) *without* per-file fsyncs, then fsyncs each touched
        directory once, batching durability per chunk instead of per
        job.  The weaker guarantee is safe by construction: a torn or
        unsynced entry reads back as a miss and is recomputed — the
        cache can lose work to a power cut, never return wrong results.
        """
        keys = []
        touched: set[str] = set()
        for spec, result in pairs:
            key = self._write_entry(spec, result, fsync_file=False)
            keys.append(key)
            touched.add(os.path.dirname(self._path(key)))
        if keys:
            touched.add(self.directory)
        for directory in sorted(touched):
            try:
                fd = os.open(directory, os.O_RDONLY)
            except OSError:  # pragma: no cover - platform-specific
                continue
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        return keys

    def __len__(self) -> int:
        total = 0
        for _root, _dirs, files in os.walk(self.directory):
            total += sum(1 for f in files if f.endswith(".json"))
        return total

    def __repr__(self) -> str:
        return f"ResultCache({self.directory!r}, entries={len(self)})"
