"""Worker-side engine of the warm pool: worlds, chunks, crash hooks.

A pool worker is a long-lived process (:func:`worker_main`) that pulls
:class:`~repro.runner.jobs.JobChunk` messages off its private pipe,
executes every spec in the chunk under one shared
:class:`~repro.obs.MetricsRegistry`, and ships a single merged
:class:`~repro.runner.jobs.ChunkResult` back — so dispatch, pickling and
registry-merge costs amortize over the whole chunk instead of being paid
per 4 ms job.

Worlds reach a worker exactly once, not once per retry round:

* **Shared memory** — when the world is the standard ``(matrix, coords,
  heights)`` array triple, the parent packs it into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment
  (:class:`SharedWorld`) and ships only the segment name + array
  layout; every worker maps the same physical pages read-only, so an
  N-worker pool holds one copy of the RTT matrix instead of N.
* **Pickle fallback** — non-array worlds travel pickled in the worker
  spawn arguments (still once per worker lifetime).
* **Per-setting builds** — specs that carry an
  ``EvaluationSetting`` and no explicit world build it locally through
  :class:`WorldMemo`, a small LRU keyed by setting, so long
  multi-setting service runs cannot accumulate every world ever built.
"""

from __future__ import annotations

import os
import signal
import time
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.runner.jobs import ChunkResult, JobChunk

__all__ = [
    "CRASH_ONCE_ENV",
    "WORLD_MEMO_CAP",
    "WorldMemo",
    "SharedWorld",
    "world_memo",
    "world_for",
    "try_pack_shared",
    "attach_world",
    "run_chunk",
    "worker_main",
]

#: Test hook: when this env var names a path and the file does not exist
#: yet, the worker creates it and dies with ``os._exit`` — a
#: deterministic stand-in for an OOM-kill, used by the crash-safety
#: tests.  The sentinel file makes the crash happen exactly once, so the
#: retry path is exercised end-to-end.
CRASH_ONCE_ENV = "REPRO_RUNNER_CRASH_ONCE"

#: Worlds kept per process: enough for every figure sweep (one setting)
#: and the coords ablation (four), small enough that a service run over
#: hundreds of distinct settings stays bounded.
WORLD_MEMO_CAP = 8


class WorldMemo:
    """Small LRU of worlds materialized in this process, keyed by setting.

    ``get_or_build`` accumulates the build time in ``build_seconds`` so
    chunk timings can separate one-off world construction from per-job
    compute (the auto-tuner must not mistake a world build for job
    cost).
    """

    def __init__(self, cap: int = WORLD_MEMO_CAP) -> None:
        if cap < 1:
            raise ValueError("world memo cap must be >= 1")
        self.cap = cap
        self.build_seconds = 0.0
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def get_or_build(self, setting: Any) -> Any:
        world = self._entries.get(setting)
        if world is not None:
            self._entries.move_to_end(setting)
            return world
        start = time.perf_counter()
        world = setting.build()
        self.build_seconds += time.perf_counter() - start
        self._entries[setting] = world
        while len(self._entries) > self.cap:
            self._entries.popitem(last=False)
        return world

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, setting: Any) -> bool:
        return setting in self._entries

    def clear(self) -> None:
        self._entries.clear()


#: Per-process world memo (parent and workers alike).
world_memo = WorldMemo()

#: World installed for every spec of this pool (explicit-world mode);
#: ``None`` means specs build their own from their setting.
_explicit_world: Any = None

#: Keeps the attached SharedMemory mapping alive for the process's
#: lifetime (the numpy views borrow its buffer).
_attached_shm: Any = None


def world_for(spec: Any) -> Any:
    """The world a spec runs against (explicit, or built from its setting)."""
    if _explicit_world is not None:
        return _explicit_world
    setting = getattr(spec, "setting", None)
    if setting is None:
        return None
    return world_memo.get_or_build(setting)


# ----------------------------------------------------------------------
# Zero-copy world transfer
# ----------------------------------------------------------------------

class SharedWorld:
    """A ``(matrix, coords, heights)`` world packed into one shared-memory
    segment.

    The parent owns the segment (``close`` unmaps and unlinks it);
    workers attach by name through :func:`attach_world` and reconstruct
    the arrays as read-only views over the same physical pages.
    """

    def __init__(self, world: tuple) -> None:
        from multiprocessing import shared_memory
        matrix, coords, heights = world
        arrays = {
            "rtt": np.ascontiguousarray(matrix.rtt, dtype=float),
            "coords": np.ascontiguousarray(coords),
        }
        if heights is not None:
            arrays["heights"] = np.ascontiguousarray(heights)
        self.nbytes = sum(a.nbytes for a in arrays.values())
        self._shm = shared_memory.SharedMemory(create=True,
                                               size=max(self.nbytes, 1))
        layout: dict[str, tuple[int, tuple, str]] = {}
        offset = 0
        for name, array in arrays.items():
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=self._shm.buf, offset=offset)
            view[...] = array
            layout[name] = (offset, array.shape, array.dtype.str)
            offset += array.nbytes
        self.handle = ("shm", self._shm.name, layout, tuple(matrix.names))

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - best effort
            pass


def try_pack_shared(world: Any) -> SharedWorld | None:
    """Pack an array world into shared memory, or ``None`` to fall back
    to pickling (non-array worlds, or hosts without shared memory)."""
    try:
        matrix, coords, heights = world
        if not hasattr(matrix, "rtt"):
            return None
        np.asarray(matrix.rtt), np.asarray(coords)
        if heights is not None:
            np.asarray(heights)
        return SharedWorld(world)
    except (TypeError, ValueError, OSError):
        return None


def attach_world(handle: tuple | None) -> Any:
    """Materialize the world a worker was spawned with.

    ``handle`` kinds: ``("none",)`` — specs build their own worlds;
    ``("pickle", world)`` — explicit world shipped by value;
    ``("shm", name, layout, names)`` — attach the parent's segment and
    rebuild ``(LatencyMatrix, coords, heights)`` zero-copy.
    """
    global _attached_shm
    if handle is None or handle[0] == "none":
        return None
    if handle[0] == "pickle":
        return handle[1]
    _, name, layout, names = handle
    from multiprocessing import shared_memory
    shm = shared_memory.SharedMemory(name=name)
    # Attaching re-registers the segment with the resource tracker (3.11
    # registers unconditionally).  Workers share the parent's tracker
    # process, whose registry is a set, so the duplicate collapses; the
    # parent's ``unlink`` performs the single matching unregister.
    # (Unregistering here would strip the parent's registration and make
    # later unregisters warn.)
    _attached_shm = shm

    def view(key: str) -> np.ndarray:
        offset, shape, dtype = layout[key]
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf,
                           offset=offset)
        array.flags.writeable = False
        return array

    from repro.net.latency import LatencyMatrix
    matrix = LatencyMatrix(view("rtt"), names)
    heights = view("heights") if "heights" in layout else None
    return matrix, view("coords"), heights


# ----------------------------------------------------------------------
# Chunk execution and the worker loop
# ----------------------------------------------------------------------

def _maybe_crash_once() -> None:
    sentinel = os.environ.get(CRASH_ONCE_ENV)
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(17)


def run_chunk(chunk: JobChunk) -> ChunkResult:
    """Execute every spec of one chunk under a single merged registry."""
    world_memo.build_seconds = 0.0
    local = obs.MetricsRegistry()
    results: list[Any] = []
    start = time.perf_counter()
    with obs.observe(local, obs.NULL_TRACER):
        for _index, spec in chunk.items:
            _maybe_crash_once()
            with local.phase("runner.job"):
                results.append(spec.execute(world_for(spec)))
    exec_seconds = time.perf_counter() - start
    return ChunkResult(
        chunk_id=chunk.chunk_id,
        indices=tuple(index for index, _spec in chunk.items),
        results=tuple(results),
        registry=local,
        exec_seconds=exec_seconds,
        setup_seconds=world_memo.build_seconds,
    )


def worker_main(worker_id: int, conn: Any, world_handle: tuple | None) -> None:
    """Long-lived worker loop: attach the world once, then serve chunks.

    The worker ignores SIGINT so a Ctrl-C in the parent can drain
    in-flight chunks (their results still arrive and land in the cache)
    instead of killing the whole pool mid-write.
    """
    global _explicit_world
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        _explicit_world = attach_world(world_handle)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                conn.send(run_chunk(message))
            except (BrokenPipeError, OSError):  # parent went away
                break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
