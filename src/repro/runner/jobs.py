"""The runner's job model: self-describing, picklable experiment cells.

The paper's evaluation is embarrassingly parallel: every sweep is a grid
of independent *(sweep point, strategy, run index)* cells, each of which
draws its own candidate split and places replicas (Section IV-A, "30
simulation runs each of which began with different candidate replica
locations").  This module turns one cell into a :class:`PlacementRunSpec`
— a frozen dataclass that carries *everything* needed to execute it in
any process: the evaluation setting (from which a worker can materialize
the world), the cell coordinates, a declarative strategy description and
the master seed.

Seeding
-------
Every random stream a job uses is derived with
:func:`numpy.random.SeedSequence` keyed by the *job's identity*, never by
execution order (:func:`seed_sequence`).  ``SeedSequence`` spawns
high-quality independent child streams from arbitrary integer entropy
tuples, so ``(master_seed, run_index)`` and ``(master_seed, run_index,
strategy_key)`` give every cell its own stream while cells of the same
run share the candidate draw (the paper's paired comparison).  Because
the key depends only on the cell identity, results are **bit-identical
regardless of worker count or scheduling order** — the property the
determinism contract tests pin down.  The derivation matches the legacy
serial loops in :mod:`repro.analysis.experiment` exactly
(``np.random.default_rng((seed, run))`` builds the same
``SeedSequence``), so archived results stay valid.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.placement.base import PlacementStrategy, average_access_delay
from repro.placement.offline_kmeans import OfflineKMeansPlacement
from repro.placement.online import OnlineClusteringPlacement
from repro.placement.optimal import OptimalPlacement
from repro.placement.random_placement import RandomPlacement

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.analysis.experiment import EvaluationSetting, Table2Row

__all__ = [
    "JobSpec",
    "JobChunk",
    "ChunkResult",
    "PlacementRunSpec",
    "Table2Spec",
    "seed_sequence",
    "strategy_spec",
    "build_strategy",
    "as_job_strategy",
    "STRATEGY_KINDS",
]


def seed_sequence(master_seed: int, *key: int) -> np.random.SeedSequence:
    """The job-identity-keyed ``SeedSequence`` for one random stream.

    The entropy is ``(master_seed, *key)`` — exactly what
    ``np.random.default_rng((master_seed, *key))`` would build — so the
    stream depends only on *which* cell is running, not on worker count,
    scheduling order, or how many streams were spawned before it.  (A
    sequential ``SeedSequence.spawn`` would encode spawn *order* into the
    children's spawn keys; keying the entropy by identity gives the same
    independence guarantees without that fragility.)

    >>> a = np.random.default_rng(seed_sequence(7, 3)).integers(0, 100, 4)
    >>> b = np.random.default_rng((7, 3)).integers(0, 100, 4)
    >>> (a == b).all()
    np.True_
    """
    return np.random.SeedSequence((int(master_seed), *(int(k) for k in key)))


# ----------------------------------------------------------------------
# Declarative strategy descriptions
# ----------------------------------------------------------------------

#: Declarative strategy kinds: short name -> (class, constructor params).
STRATEGY_KINDS: dict[str, type[PlacementStrategy]] = {
    "random": RandomPlacement,
    "offline_kmeans": OfflineKMeansPlacement,
    "online": OnlineClusteringPlacement,
    "optimal": OptimalPlacement,
}

#: Constructor attributes captured when converting a known strategy
#: instance to its declarative form (attribute name == ctor kwarg).
_STRATEGY_PARAMS: dict[str, tuple[str, ...]] = {
    "random": (),
    "offline_kmeans": ("n_init",),
    "online": ("micro_clusters", "migration_rounds", "accesses_per_client",
               "radius_floor", "selection", "summary_loss"),
    "optimal": ("max_combinations",),
}


def strategy_spec(kind: str, **params: Any) -> tuple[str, tuple]:
    """A canonical declarative strategy: ``(kind, sorted param items)``.

    >>> strategy_spec("online", micro_clusters=4)
    ('online', (('micro_clusters', 4),))
    """
    if kind not in STRATEGY_KINDS:
        raise ValueError(f"unknown strategy kind {kind!r}; "
                         f"known: {sorted(STRATEGY_KINDS)}")
    return (kind, tuple(sorted(params.items())))


def build_strategy(strategy: Any) -> PlacementStrategy:
    """Materialize a strategy from its declarative form (or pass through).

    Accepts either a ``(kind, params)`` tuple from :func:`strategy_spec`
    or an already-built :class:`PlacementStrategy` instance (the fallback
    for custom strategies the declarative registry doesn't know).
    """
    if isinstance(strategy, PlacementStrategy):
        return strategy
    kind, params = strategy
    return STRATEGY_KINDS[kind](**dict(params))


def as_job_strategy(strategy: PlacementStrategy | tuple) -> Any:
    """Convert a strategy instance to declarative form when possible.

    Known classes become ``(kind, params)`` tuples — smaller to pickle
    and stable to hash for the result cache.  Unknown strategies are
    carried as the (picklable) instance itself.
    """
    if isinstance(strategy, tuple):
        return strategy
    for kind, cls in STRATEGY_KINDS.items():
        if type(strategy) is cls:
            params = {name: getattr(strategy, name)
                      for name in _STRATEGY_PARAMS[kind]}
            return strategy_spec(kind, **params)
    return strategy


def _strategy_payload(strategy: Any) -> Any:
    """JSON-able cache-key material for a strategy description."""
    if isinstance(strategy, tuple):
        kind, params = strategy
        return [kind, [[k, v] for k, v in params]]
    # Custom instance: hash its pickled form (stable within one code
    # version; the cache salt invalidates across versions anyway).
    import hashlib
    import pickle
    blob = pickle.dumps(strategy, protocol=pickle.HIGHEST_PROTOCOL)
    return {"pickled_sha256": hashlib.sha256(blob).hexdigest(),
            "repr": repr(strategy)}


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementRunSpec:
    """One (sweep point, strategy, run index) evaluation cell.

    ``setting`` lets a worker materialize the world
    (matrix/coords/heights) on its own; when a sweep runs against an
    explicitly supplied world instead (see
    :func:`repro.runner.pool.execute`), ``setting`` is ``None`` and
    ``world_key`` carries a digest of that world so cache keys stay
    sound.  Executing the spec returns the cell's true mean access delay
    in milliseconds — a plain float, cheap to ship between processes.
    """

    sweep: str                      # e.g. "figure1"
    series: str                     # series label, e.g. the strategy name
    x: float                        # sweep-point position
    run_index: int
    n_dc: int
    k: int
    strategy: Any                   # declarative tuple or instance
    seed: int
    candidate_mode: str = "dispersed"
    setting: "EvaluationSetting | None" = None
    world_key: str | None = None

    kind = "placement-run"

    def payload(self) -> dict:
        """Canonical JSON-able description — the cache-key material."""
        from dataclasses import asdict
        return {
            "kind": self.kind,
            "sweep": self.sweep,
            "series": self.series,
            "x": self.x,
            "run_index": self.run_index,
            "n_dc": self.n_dc,
            "k": self.k,
            "strategy": _strategy_payload(self.strategy),
            "seed": self.seed,
            "candidate_mode": self.candidate_mode,
            "setting": asdict(self.setting) if self.setting else None,
            "world_key": self.world_key,
        }

    def execute(self, world) -> float:
        """Run the cell against ``world = (matrix, coords, heights)``."""
        from repro.analysis.experiment import draw_candidates
        from repro.placement.base import PlacementProblem
        if world is None:
            raise ValueError(
                "PlacementRunSpec needs a world: give the spec a setting "
                "or execute with an explicit world")
        matrix, coords, heights = world
        run_rng = np.random.default_rng(
            seed_sequence(self.seed, self.run_index))
        candidates, clients = draw_candidates(matrix, self.n_dc, run_rng,
                                              self.candidate_mode)
        problem = PlacementProblem(matrix, candidates, clients, self.k,
                                   coords=coords, heights=heights)
        strategy = build_strategy(self.strategy)
        strat_rng = np.random.default_rng(
            seed_sequence(self.seed, self.run_index,
                          zlib.crc32(strategy.name.encode())))
        sites = strategy.place(problem, strat_rng)
        return average_access_delay(matrix, clients, sites)


@dataclass(frozen=True)
class Table2Spec:
    """One Table II row: online-vs-offline cost at one access volume."""

    n_accesses: int
    k: int
    m: int
    dim: int = 3
    seed: int = 0

    kind = "table2-row"
    setting = None                  # table rows need no world

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "n_accesses": self.n_accesses,
            "k": self.k,
            "m": self.m,
            "dim": self.dim,
            "seed": self.seed,
        }

    def execute(self, world=None) -> "Table2Row":
        from repro.analysis.experiment import compute_table2_row
        return compute_table2_row(self.n_accesses, self.k, self.m,
                                  self.dim, self.seed)


#: Anything the executor accepts: needs ``payload()``, ``execute(world)``,
#: a ``kind`` tag and a ``setting`` attribute.
JobSpec = PlacementRunSpec | Table2Spec


# ----------------------------------------------------------------------
# Chunked dispatch: the unit of work shipped to a warm pool worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobChunk:
    """A batch of ``(spec index, spec)`` cells dispatched as one message.

    Chunking amortizes the per-dispatch costs (pipe round-trip, spec
    pickling, result unpickling, registry merge) over many small jobs —
    the fix for the pathological regime where a 4 ms job pays a
    multi-ms dispatch.  The executor sizes chunks from a measured
    dispatch-overhead/job-cost ratio (see ``docs/runner.md``).
    """

    chunk_id: int
    items: tuple[tuple[int, Any], ...]

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class ChunkResult:
    """Everything a worker returns for one chunk, in one payload.

    ``registry`` is the single :class:`~repro.obs.MetricsRegistry` the
    whole chunk ran under (per-job ``runner.job`` timings included), so
    the parent does one merge per chunk instead of one per job.
    ``exec_seconds`` covers the chunk's whole run; ``setup_seconds`` is
    the share spent building worlds from settings — the auto-tuner
    subtracts it so one-off world construction is not mistaken for
    per-job cost.
    """

    chunk_id: int
    indices: tuple[int, ...]
    results: tuple
    registry: Any
    exec_seconds: float
    setup_seconds: float
