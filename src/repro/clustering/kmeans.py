"""Weighted k-means (Lloyd's algorithm with k-means++ seeding).

Algorithm 1 of the paper merges micro-clusters into macro-clusters with a
*weighted* K-means: each micro-cluster is a pseudo-point located at its
centroid, weighted by how many accesses (or bytes) it absorbed.  The
implementation below is a standard Lloyd iteration over weighted points;
with unit weights it degenerates to ordinary k-means, which is what the
offline baseline uses.

The numeric inner loops — the full point-by-centroid distance matrix,
the assignment, and the centroid update — live in
:mod:`repro.kernels.wkmeans` and run on either the vectorised ``numpy``
backend or the scalar ``python`` reference backend (the ``backend``
argument; ``None`` follows the process-wide :mod:`repro.kernels`
switch).  Seeding, probability draws and convergence control stay on
the shared ``numpy.random.Generator`` so both backends consume the same
random stream; empty clusters reseed deterministically at the point
with the largest assignment cost — never from hidden global RNG state —
so a fixed seed gives a fixed answer on either backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.kernels import resolve_backend
from repro.kernels import wkmeans as _wk

__all__ = ["KMeansResult", "kmeans_pp_init", "weighted_kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centroids:
        ``(k, d)`` cluster centers.
    labels:
        ``(n,)`` index of the centroid each input point belongs to.
    inertia:
        Weighted sum of squared distances to assigned centroids.
    iterations:
        Lloyd iterations executed (0 when k >= n and no iteration ran).
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def cluster_weights(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Total weight assigned to each centroid."""
        n = self.labels.size
        weights = np.ones(n) if weights is None else np.asarray(weights, float)
        return np.bincount(self.labels, weights=weights, minlength=self.k)


def kmeans_pp_init(points: np.ndarray, k: int, rng: np.random.Generator,
                   weights: np.ndarray | None = None,
                   backend: str | None = None) -> np.ndarray:
    """Weighted k-means++ seeding.

    The first center is drawn proportionally to point weight; each later
    center proportionally to ``weight * D(x)^2`` where ``D(x)`` is the
    distance to the closest already-chosen center.  The random draws
    always come from ``rng`` — the backend only changes how ``D(x)`` is
    computed — so both backends consume the identical random stream.
    """
    backend = resolve_backend(backend)
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    weights = np.ones(n) if weights is None else np.asarray(weights, dtype=float)
    if weights.shape != (n,) or np.any(weights < 0) or weights.sum() == 0:
        raise ValueError("weights must be non-negative with positive sum")

    centers = np.empty((k, points.shape[1]))
    probs = weights / weights.sum()
    first = rng.choice(n, p=probs)
    centers[0] = points[first]

    closest_sq = _wk.sq_distances(points, centers[:1], backend=backend)[:, 0]
    for i in range(1, k):
        scores = weights * closest_sq
        total = scores.sum()
        if total <= 0:
            # All remaining mass sits on already-chosen points; any
            # weighted point works.
            idx = rng.choice(n, p=probs)
        else:
            idx = rng.choice(n, p=scores / total)
        centers[i] = points[idx]
        closest_sq = np.minimum(
            closest_sq,
            _wk.sq_distances(points, centers[i:i + 1], backend=backend)[:, 0],
        )
    return centers


def weighted_kmeans(points: np.ndarray, k: int,
                    weights: np.ndarray | None = None,
                    rng: np.random.Generator | None = None,
                    max_iter: int = 100, tol: float = 1e-6,
                    n_init: int = 4,
                    backend: str | None = None) -> KMeansResult:
    """Cluster weighted points into ``k`` groups.

    Parameters
    ----------
    points:
        ``(n, d)`` input points (micro-cluster centroids in the paper).
    k:
        Number of clusters.  If ``k >= n`` every point becomes its own
        centroid (padded by repeating points), which is the natural
        degenerate answer for the placement use case.
    weights:
        Per-point non-negative weights; ``None`` means unweighted.
    n_init:
        Independent seedings; the lowest-inertia run wins.
    backend:
        Kernel backend (``"python"`` or ``"numpy"``); ``None`` follows
        the process-wide :mod:`repro.kernels` switch.

    Returns
    -------
    :class:`KMeansResult`

    Examples
    --------
    >>> import numpy as np
    >>> points = np.array([[0.0, 0.0], [0.1, 0.0], [9.9, 0.0], [10.0, 0.0]])
    >>> result = weighted_kmeans(points, 2, rng=np.random.default_rng(0))
    >>> sorted(float(round(c[0], 2)) for c in result.centroids)
    [0.05, 9.95]
    """
    backend = resolve_backend(backend)
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if k < 1:
        raise ValueError("k must be positive")
    rng = rng or np.random.default_rng(0)
    weights = np.ones(n) if weights is None else np.asarray(weights, dtype=float)
    if weights.shape != (n,):
        raise ValueError(f"expected {n} weights, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if weights.sum() == 0:
        raise ValueError("total weight must be positive")

    if k >= n:
        centroids = points.copy()
        labels = np.arange(n)
        return KMeansResult(centroids, labels, 0.0, 0)

    registry = obs.get_registry()
    best: KMeansResult | None = None
    with registry.phase("clustering.kmeans"):
        for _ in range(max(1, n_init)):
            result = _lloyd(points, k, weights, rng, max_iter, tol, backend)
            if best is None or result.inertia < best.inertia:
                best = result
    assert best is not None
    if registry.enabled:
        registry.counter("clustering.kmeans.runs").inc()
        registry.counter("clustering.kmeans.iterations").inc(best.iterations)
    return best


def _lloyd(points: np.ndarray, k: int, weights: np.ndarray,
           rng: np.random.Generator, max_iter: int, tol: float,
           backend: str) -> KMeansResult:
    centers = kmeans_pp_init(points, k, rng, weights, backend=backend)
    labels = np.zeros(points.shape[0], dtype=int)
    inertia = np.inf
    iteration = 0
    for iteration in range(1, max_iter + 1):
        sq = _wk.sq_distances(points, centers, backend=backend)
        labels = _wk.assign_labels(sq, backend=backend)
        costs = _wk.assignment_costs(sq, labels, weights, backend=backend)
        new_inertia = float(np.sum(costs))

        new_centers = _wk.update_centroids(points, labels, weights, centers,
                                           costs, backend=backend)

        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if abs(inertia - new_inertia) <= tol * max(inertia, 1.0) and shift <= tol:
            inertia = new_inertia
            break
        inertia = new_inertia

    sq = _wk.sq_distances(points, centers, backend=backend)
    labels = _wk.assign_labels(sq, backend=backend)
    inertia = float(np.sum(
        _wk.assignment_costs(sq, labels, weights, backend=backend)))
    return KMeansResult(centers, labels, inertia, iteration)
