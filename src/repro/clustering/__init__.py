"""Clustering primitives: weighted k-means and streaming micro-clusters.

The paper's placement algorithm is built from two clustering layers
(Section III-B/C):

* an **online** layer at each replica server that folds every data access
  into at most *m* micro-clusters — implemented by
  :class:`OnlineClusterer` over :class:`ClusterFeature` vectors;
* a periodic **weighted k-means** over the collected micro-clusters,
  treating each as a pseudo-point at its centroid — implemented by
  :func:`weighted_kmeans` (Lloyd's algorithm with weighted k-means++
  seeding).
"""

from repro.clustering.kmeans import KMeansResult, kmeans_pp_init, weighted_kmeans
from repro.clustering.stream import ClusterFeature, OnlineClusterer

__all__ = [
    "KMeansResult",
    "kmeans_pp_init",
    "weighted_kmeans",
    "ClusterFeature",
    "OnlineClusterer",
]
