"""Streaming micro-clusters (Section III-B of the paper).

A micro-cluster is a *cluster feature* (CF) vector in the CluStream style
(Aggarwal et al., VLDB 2003 — the paper's reference [21]): for the points
it has absorbed it stores only

* ``count`` — how many points (data accesses),
* ``weight`` — total payload weight (bytes exchanged with users),
* ``linear_sum`` — per-dimension sum of coordinates,
* ``square_sum`` — per-dimension sum of squared coordinates.

From these the centroid (``linear_sum / count``) and the RMS deviation of
members around it are recoverable, and two clusters merge by adding their
vectors — exactly the properties the paper exploits.

:class:`OnlineClusterer` maintains at most ``max_clusters`` CF vectors
under the paper's rule: absorb a point into the nearest cluster when it
falls within that cluster's standard deviation, otherwise spawn a new
cluster and merge the two closest.  The numeric work routes through
:mod:`repro.kernels.cf`, so the same maintenance rule runs on either the
vectorised ``numpy`` backend or the scalar ``python`` reference backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.kernels import cf as _cf
from repro.kernels import resolve_backend

__all__ = ["ClusterFeature", "OnlineClusterer"]


def _as_count(value: float) -> int | float:
    """Counts stay ints while they are whole (decay makes them float)."""
    return int(value) if float(value).is_integer() else float(value)


@dataclass
class ClusterFeature:
    """Additive summary of a set of points (a micro-cluster).

    Build one with :meth:`from_point`; grow it with :meth:`absorb` and
    :meth:`merge`; divide it with :meth:`split`.  All statistics are
    exact for the absorbed points.

    Examples
    --------
    >>> import numpy as np
    >>> cf = ClusterFeature.from_point(np.array([0.0, 0.0]))
    >>> cf.absorb(np.array([2.0, 0.0]))
    >>> cf.count
    2
    >>> cf.centroid
    array([1., 0.])
    >>> round(cf.deviation, 3)
    1.0
    """

    count: int
    weight: float
    linear_sum: np.ndarray
    square_sum: np.ndarray

    @staticmethod
    def from_point(point: np.ndarray, weight: float = 1.0) -> "ClusterFeature":
        """A singleton cluster containing only ``point``."""
        point = np.asarray(point, dtype=float)
        if point.ndim != 1:
            raise ValueError("points must be 1-D coordinate vectors")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        return ClusterFeature(1, float(weight), point.copy(), point ** 2)

    @property
    def dim(self) -> int:
        """Dimensionality of the summarized points."""
        return self.linear_sum.size

    @property
    def centroid(self) -> np.ndarray:
        """Mean of the absorbed points."""
        return self.linear_sum / self.count

    @property
    def deviation(self) -> float:
        """RMS deviation of members around the centroid.

        Computed as ``sqrt(E[X^2] - E[X]^2)`` summed over dimensions —
        the footnote-1 identity the paper uses — clamped at zero where
        float error makes the recovered variance dip negative.  Zero for
        singletons.
        """
        mean = self.linear_sum / self.count
        var = self.square_sum / self.count - mean ** 2
        return float(np.sqrt(max(float(np.sum(var)), 0.0)))

    def absorb(self, point: np.ndarray, weight: float = 1.0) -> None:
        """Fold one more point into the cluster."""
        point = np.asarray(point, dtype=float)
        if point.shape != self.linear_sum.shape:
            raise ValueError("dimension mismatch")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.count += 1
        self.weight += float(weight)
        self.linear_sum += point
        self.square_sum += point ** 2

    def merge(self, other: "ClusterFeature") -> None:
        """Fold another cluster into this one (CF vectors are additive)."""
        if other.linear_sum.shape != self.linear_sum.shape:
            raise ValueError("dimension mismatch")
        self.count += other.count
        self.weight += other.weight
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum

    def split(self, backend: str | None = None
              ) -> tuple["ClusterFeature", "ClusterFeature"]:
        """Divide into two halves that merge back to this cluster.

        The halves sit one recovered standard deviation apart; ``count``
        and ``weight`` are conserved exactly, ``linear_sum`` to within
        one ulp (see :func:`repro.kernels.cf.split_row`).  Deterministic;
        requires ``count >= 2``.
        """
        (c1, w1, ls1, ss1), (c2, w2, ls2, ss2) = _cf.split_row(
            self.count, self.weight, self.linear_sum, self.square_sum,
            backend=backend)
        return (ClusterFeature(_as_count(c1), w1, ls1, ss1),
                ClusterFeature(_as_count(c2), w2, ls2, ss2))

    def copy(self) -> "ClusterFeature":
        """Deep copy (the arrays are duplicated)."""
        return ClusterFeature(self.count, self.weight,
                              self.linear_sum.copy(), self.square_sum.copy())

    def distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from the centroid to ``point``."""
        return float(np.linalg.norm(self.centroid - np.asarray(point, float)))

    #: Serialized size in bytes: count (8) + weight (8) + two float64
    #: vectors.  Used by the Table II bandwidth accounting; comfortably
    #: below the paper's "less than 1 KB" bound for realistic dimensions.
    @property
    def wire_size_bytes(self) -> int:
        return 16 + 2 * 8 * self.dim


class OnlineClusterer:
    """Maintains at most ``max_clusters`` micro-clusters over a stream.

    Parameters
    ----------
    max_clusters:
        The paper's *m*: the per-replica budget of micro-clusters.
    radius_floor:
        Minimum absorption radius.  The paper's rule absorbs a point when
        it lies within the cluster's standard deviation; for singletons
        that deviation is zero, so without a floor every distinct point
        would spawn (and immediately force a merge of) a cluster.  The
        floor gives young clusters a small catchment area; the ablation
        benchmark quantifies its effect.
    backend:
        Kernel backend (``"python"`` or ``"numpy"``); ``None`` follows
        the process-wide :mod:`repro.kernels` switch at each call.
    """

    def __init__(self, max_clusters: int, radius_floor: float = 5.0,
                 backend: str | None = None) -> None:
        if max_clusters < 1:
            raise ValueError("need at least one micro-cluster")
        if radius_floor < 0:
            raise ValueError("radius floor must be non-negative")
        if backend is not None:
            backend = resolve_backend(backend)
        self.max_clusters = max_clusters
        self.radius_floor = radius_floor
        self.backend = backend
        self.clusters: list[ClusterFeature] = []
        self.points_seen = 0
        # Row-per-cluster centroid cache so the per-point nearest-cluster
        # search is one vectorised operation instead of a Python loop.
        self._centroid_cache: np.ndarray | None = None

    def _rebuild_cache(self) -> None:
        if self.clusters:
            self._centroid_cache = np.stack([c.centroid for c in self.clusters])
        else:
            self._centroid_cache = None

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[ClusterFeature]:
        return iter(self.clusters)

    @property
    def total_count(self) -> int:
        """Total points absorbed across all clusters."""
        return sum(c.count for c in self.clusters)

    @property
    def total_weight(self) -> float:
        """Total payload weight absorbed across all clusters."""
        return sum(c.weight for c in self.clusters)

    def _nearest(self, point: np.ndarray) -> tuple[int, float]:
        """Index of and squared distance to the nearest centroid."""
        cache = self._centroid_cache
        assert cache is not None
        if resolve_backend(self.backend) == "numpy":
            diff = cache - point[None, :]
            sq = np.einsum("ij,ij->i", diff, diff)
            nearest = int(np.argmin(sq))
            return nearest, float(sq[nearest])
        best, best_sq = 0, float("inf")
        target = point.tolist()
        for idx, row in enumerate(cache.tolist()):
            acc = 0.0
            for a, b in zip(row, target):
                d = a - b
                acc += d * d
            if acc < best_sq:
                best, best_sq = idx, acc
        return best, best_sq

    def add(self, point: np.ndarray, weight: float = 1.0) -> None:
        """Process one stream point per the paper's maintenance rule."""
        point = np.asarray(point, dtype=float)
        self.points_seen += 1
        registry = obs.get_registry()
        if not self.clusters:
            self.clusters.append(ClusterFeature.from_point(point, weight))
            self._rebuild_cache()
            if registry.enabled:
                registry.counter("clustering.micro.spawned").inc()
                obs.get_tracer().record(obs.MICRO_SPAWN, clusters=1)
            return

        nearest, sq = self._nearest(point)
        cluster = self.clusters[nearest]
        distance = float(np.sqrt(sq))
        radius = max(cluster.deviation, self.radius_floor)
        if distance <= radius:
            cluster.absorb(point, weight)
            self._centroid_cache[nearest] = cluster.centroid
            if registry.enabled:
                registry.counter("clustering.micro.absorbed").inc()
                obs.get_tracer().record(obs.MICRO_ABSORB, cluster=nearest,
                                        distance=distance)
            return

        self.clusters.append(ClusterFeature.from_point(point, weight))
        self._centroid_cache = np.vstack([self._centroid_cache, point])
        if registry.enabled:
            registry.counter("clustering.micro.spawned").inc()
            obs.get_tracer().record(obs.MICRO_SPAWN,
                                    clusters=len(self.clusters))
        if len(self.clusters) > self.max_clusters:
            self._merge_closest_pair()

    def _merge_closest_pair(self) -> None:
        """Merge the two clusters with the closest centroids."""
        centroids = self._centroid_cache
        assert centroids is not None
        keep, drop = _cf.closest_pair(centroids, backend=self.backend)
        self.clusters[keep].merge(self.clusters[drop])
        del self.clusters[drop]
        self._centroid_cache = np.delete(centroids, drop, axis=0)
        self._centroid_cache[keep] = self.clusters[keep].centroid
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("clustering.micro.merged").inc()
            obs.get_tracer().record(obs.MICRO_MERGE, kept=keep, dropped=drop,
                                    clusters=len(self.clusters))

    def snapshot(self) -> list[ClusterFeature]:
        """Deep copies of the current micro-clusters (for shipping)."""
        return [c.copy() for c in self.clusters]

    def replace_clusters(self, clusters: list[ClusterFeature]) -> None:
        """Swap in an externally modified cluster list (e.g. after decay)."""
        if len(clusters) > self.max_clusters:
            raise ValueError("cluster list exceeds the budget")
        self.clusters = list(clusters)
        self._rebuild_cache()

    def reset(self) -> None:
        """Forget all state (used when a summary window rolls over)."""
        self.clusters.clear()
        self.points_seen = 0
        self._centroid_cache = None

    def extend(self, points: Iterable[np.ndarray],
               weights: Iterable[float] | None = None) -> None:
        """Feed many points through the batched absorption kernel.

        Equivalent to calling :meth:`add` once per point, but the whole
        block runs inside :func:`repro.kernels.cf.absorb_stream`, so the
        per-point work never touches Python objects on the numpy
        backend.  Spawn/absorb/merge events are counted in aggregate
        (individual tracer spans are not emitted on this path).
        """
        block = [np.asarray(p, dtype=float) for p in points]
        if not block:
            return
        point_array = np.stack(block)
        if weights is None:
            point_weights = np.ones(len(block))
        else:
            point_weights = np.asarray(list(weights), dtype=float)
            if point_weights.shape != (len(block),):
                raise ValueError(
                    f"expected {len(block)} weights, "
                    f"got shape {point_weights.shape}")
        if np.any(point_weights < 0):
            raise ValueError("weight must be non-negative")

        m = len(self.clusters)
        d = point_array.shape[1]
        counts = np.array([c.count for c in self.clusters], dtype=float)
        cl_weights = np.array([c.weight for c in self.clusters], dtype=float)
        linear = (np.stack([c.linear_sum for c in self.clusters])
                  if m else np.zeros((0, d)))
        square = (np.stack([c.square_sum for c in self.clusters])
                  if m else np.zeros((0, d)))

        counts, cl_weights, linear, square, stats = _cf.absorb_stream(
            counts, cl_weights, linear, square, point_array, point_weights,
            self.radius_floor, self.max_clusters, backend=self.backend)

        self.clusters = [
            ClusterFeature(_as_count(c), float(w), ls, ss)
            for c, w, ls, ss in zip(counts.tolist(), cl_weights.tolist(),
                                    linear, square)
        ]
        self._rebuild_cache()
        self.points_seen += len(block)
        registry = obs.get_registry()
        if registry.enabled:
            for event, total in stats.items():
                if total:
                    registry.counter(f"clustering.micro.{event}").inc(total)
