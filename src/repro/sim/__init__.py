"""Discrete-event simulation substrate.

The paper evaluates with an event-based simulator that emulates
communication between nodes using measured PlanetLab RTTs.  This package
is that substrate: a heap-driven event loop (:class:`Simulator`), nodes
that exchange latency-delayed messages (:class:`Node`,
:class:`Network`), and periodic processes (:class:`PeriodicProcess`)
used for gossip, access workloads and placement epochs.

Simulated time is in **milliseconds** to match RTT units.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.node import Message, Network, Node
from repro.sim.process import PeriodicProcess
from repro.sim.failures import FailureEvent, FailureInjector
from repro.sim.gossip import CoordinateGossip

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Message",
    "Network",
    "Node",
    "PeriodicProcess",
    "FailureEvent",
    "FailureInjector",
    "CoordinateGossip",
]
