"""Nodes and latency-delayed messaging on top of the simulator.

A :class:`Network` binds a :class:`~repro.sim.simulator.Simulator` to a
:class:`~repro.net.latency.LatencyMatrix`; :class:`Node` subclasses
register with it and exchange :class:`Message` objects that arrive after
the one-way delay between the endpoints (plus payload serialization time
when a :class:`~repro.net.bandwidth.BandwidthModel` is configured).  The
network keeps per-node traffic accounting, which the Table II bandwidth
comparison uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyMatrix
from repro.sim.simulator import Simulator

__all__ = ["Message", "Network", "Node"]


@dataclass(frozen=True)
class Message:
    """One message in flight.

    ``kind`` is a free-form tag (e.g. ``"access-request"``); ``payload``
    is arbitrary and ``size_bytes`` is what traffic accounting charges.
    """

    sender: int
    recipient: int
    kind: str
    payload: Any = None
    size_bytes: int = 0
    sent_at: float = 0.0


@dataclass
class TrafficStats:
    """Byte and message counters for one node or the whole network."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def record_send(self, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size

    def record_receive(self, size: int) -> None:
        self.messages_received += 1
        self.bytes_received += size


class Network:
    """Message fabric: delivers node-to-node messages after latency.

    Parameters
    ----------
    sim:
        The event loop that delivery events are scheduled on.
    matrix:
        Ground-truth RTTs; a message from ``a`` to ``b`` arrives after
        ``matrix.one_way(a, b)`` milliseconds.
    """

    def __init__(self, sim: Simulator, matrix: LatencyMatrix,
                 bandwidth: BandwidthModel | None = None) -> None:
        self.sim = sim
        self.matrix = matrix
        self.bandwidth = bandwidth
        self.nodes: dict[int, "Node"] = {}
        self.stats = TrafficStats()
        self.per_node: dict[int, TrafficStats] = {}
        self.per_kind_bytes: dict[str, int] = {}
        self._down: set[int] = set()
        #: Directed links currently cut by a partition: (sender, recipient).
        self._blocked: set[tuple[int, int]] = set()
        #: Directed per-link drop probability (flaky links).
        self._loss: dict[tuple[int, int], float] = {}
        #: Monotone fault-state version: bumped by every node/link state
        #: mutation.  Consumers (the batched engine's route cache) use it
        #: to know whether any reachability/reliability answer could have
        #: changed since they last looked, without re-deriving the full
        #: fault state.
        self.state_epoch = 0
        self.messages_dropped = 0

    def register(self, node: "Node") -> None:
        """Attach ``node``; its id must index into the latency matrix."""
        if not 0 <= node.node_id < self.matrix.n:
            raise ValueError(
                f"node id {node.node_id} outside matrix of size {self.matrix.n}"
            )
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self.nodes[node.node_id] = node
        self.per_node[node.node_id] = TrafficStats()

    def send(self, message: Message) -> None:
        """Ship ``message``; the recipient's handler fires after delay.

        Messages from a down sender are silently dropped (a crashed node
        cannot transmit); messages to a down recipient are dropped at
        delivery time, so a node crashing mid-flight still loses them.
        """
        if message.recipient not in self.nodes:
            raise KeyError(f"unknown recipient {message.recipient}")
        registry = obs.get_registry()
        if message.sender in self._down:
            self.messages_dropped += 1
            return
        link = (message.sender, message.recipient)
        if link in self._blocked:
            self.messages_dropped += 1
            if registry.enabled:
                registry.counter("net.messages_blocked").inc()
            return
        loss = self._loss.get(link)
        if loss is not None and self.sim.rng("net.loss").random() < loss:
            self.messages_dropped += 1
            if registry.enabled:
                registry.counter("net.messages_lost").inc()
            return
        if registry.enabled:
            registry.counter("net.messages_sent").inc()
            registry.counter("net.bytes_sent").inc(message.size_bytes)
        self.stats.record_send(message.size_bytes)
        self.per_node[message.sender].record_send(message.size_bytes)
        self.per_kind_bytes[message.kind] = (
            self.per_kind_bytes.get(message.kind, 0) + message.size_bytes
        )
        delay = self.matrix.one_way(message.sender, message.recipient)
        if self.bandwidth is not None:
            rtt = self.matrix.latency(message.sender, message.recipient)
            delay += self.bandwidth.transfer_ms(rtt, message.size_bytes)
        # Read request/reply deliveries are *inert*: handling them only
        # touches order-tolerant sinks (buffered summary folds, the
        # time-sorted access log, integer counters), so they do not end
        # a batched data plane's bulk window.  Write and control-plane
        # deliveries mutate versions/placement and stay barriers.
        self.sim.schedule(delay, self._deliver, message,
                          inert=message.kind in ("read-req", "read-rep"))

    def _deliver(self, message: Message) -> None:
        node = self.nodes.get(message.recipient)
        if node is None:  # node retired while the message was in flight
            return
        if message.recipient in self._down:
            self.messages_dropped += 1
            return
        if (message.sender, message.recipient) in self._blocked:
            # The link was cut while the message was in flight.
            self.messages_dropped += 1
            return
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("net.messages_delivered").inc()
            registry.histogram("net.delivery_delay_ms").observe(
                self.sim.now - message.sent_at)
        self.stats.record_receive(message.size_bytes)
        self.per_node[message.recipient].record_receive(message.size_bytes)
        node.handle_message(message)

    def rtt(self, a: int, b: int) -> float:
        """Ground-truth round-trip time between two nodes."""
        return self.matrix.latency(a, b)

    def link_reliable(self, a: int, b: int) -> bool:
        """Whether ``a -> b`` delivers deterministically, no RNG draws.

        True iff the directed link is uncut *and* has no loss entry.  A
        configured loss probability of 0.0 still consumes a
        ``"net.loss"`` draw per message, so the batched engine must
        treat such links as non-bulkable to keep RNG streams aligned.
        """
        link = (a, b)
        return link not in self._blocked and link not in self._loss

    # ------------------------------------------------------------------
    # Bulk traffic accounting (batched data-plane engine)
    # ------------------------------------------------------------------
    def account_bulk_sends(self, kind: str, senders: np.ndarray,
                           sizes: np.ndarray) -> None:
        """Apply :meth:`send`-side accounting for a block of messages.

        The caller guarantees every message would have left cleanly
        (sender up, link uncut and loss-free).  Counter increments are
        integer-valued, so folding a block at once matches the scalar
        per-message path exactly.
        """
        count = senders.size
        if count == 0:
            return
        total = int(sizes.sum())
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("net.messages_sent").inc(count)
            registry.counter("net.bytes_sent").inc(total)
        self.stats.messages_sent += count
        self.stats.bytes_sent += total
        self.per_kind_bytes[kind] = self.per_kind_bytes.get(kind, 0) + total
        per_sender = np.bincount(senders, weights=sizes)
        uniq, counts = np.unique(senders, return_counts=True)
        for node, n in zip(uniq.tolist(), counts.tolist()):
            stats = self.per_node[node]
            stats.messages_sent += int(n)
            stats.bytes_sent += int(per_sender[node])

    def account_bulk_deliveries(self, recipients: np.ndarray,
                                sizes: np.ndarray,
                                delays: np.ndarray) -> None:
        """Apply :meth:`_deliver`-side accounting for a message block.

        ``delays`` must be the per-message ``arrival - sent_at`` values
        the scalar path would observe.
        """
        count = recipients.size
        if count == 0:
            return
        total = int(sizes.sum())
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("net.messages_delivered").inc(count)
            registry.histogram("net.delivery_delay_ms").observe_many(delays)
        self.stats.messages_received += count
        self.stats.bytes_received += total
        per_recipient = np.bincount(recipients, weights=sizes)
        uniq, counts = np.unique(recipients, return_counts=True)
        for node, n in zip(uniq.tolist(), counts.tolist()):
            stats = self.per_node[node]
            stats.messages_received += int(n)
            stats.bytes_received += int(per_recipient[node])

    # ------------------------------------------------------------------
    # Liveness (driven by repro.sim.failures.FailureInjector)
    # ------------------------------------------------------------------
    def is_up(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently able to send/receive."""
        return node_id not in self._down

    def set_down(self, node_id: int) -> None:
        """Mark a node crashed; its traffic is dropped until set_up."""
        self.state_epoch += 1
        self._down.add(node_id)

    def set_up(self, node_id: int) -> None:
        """Mark a node recovered."""
        self.state_epoch += 1
        self._down.discard(node_id)

    # ------------------------------------------------------------------
    # Link state (partitions and asymmetric loss)
    # ------------------------------------------------------------------
    def set_link_down(self, a: int, b: int, symmetric: bool = True) -> None:
        """Cut the ``a -> b`` link (and ``b -> a`` when symmetric)."""
        self.state_epoch += 1
        self._blocked.add((a, b))
        if symmetric:
            self._blocked.add((b, a))

    def set_link_up(self, a: int, b: int, symmetric: bool = True) -> None:
        """Restore the ``a -> b`` link (and ``b -> a`` when symmetric)."""
        self.state_epoch += 1
        self._blocked.discard((a, b))
        if symmetric:
            self._blocked.discard((b, a))

    def link_up(self, a: int, b: int) -> bool:
        """Whether the directed link ``a -> b`` is currently uncut."""
        return (a, b) not in self._blocked

    def can_reach(self, a: int, b: int) -> bool:
        """Whether a message from ``a`` can currently arrive at ``b``.

        True iff both endpoints are up and the directed link is uncut.
        (The overlay is a full mesh — messages are never relayed through
        intermediate nodes, so reachability is a single-link question.)
        Flaky-link loss is probabilistic and deliberately *not* part of
        this check: a lossy link is reachable, just unreliable.
        """
        return (self.is_up(a) and self.is_up(b)
                and (a, b) not in self._blocked)

    def set_link_loss(self, a: int, b: int, probability: float,
                      symmetric: bool = False) -> None:
        """Drop each ``a -> b`` message with ``probability``.

        Asymmetric by default — real wide-area loss frequently is.  The
        drop draws come from the simulator's ``"net.loss"`` RNG stream,
        so runs stay deterministic; with no flaky links configured no
        randomness is consumed at all.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must lie in [0, 1]")
        self.state_epoch += 1
        self._loss[(a, b)] = probability
        if symmetric:
            self._loss[(b, a)] = probability

    def clear_link_loss(self, a: int, b: int, symmetric: bool = False) -> None:
        """Make the ``a -> b`` link reliable again."""
        self.state_epoch += 1
        self._loss.pop((a, b), None)
        if symmetric:
            self._loss.pop((b, a), None)


class Node:
    """Base class for simulated nodes.

    Subclasses override :meth:`handle_message`.  ``node_id`` doubles as
    the row index into the network's latency matrix.
    """

    def __init__(self, network: Network, node_id: int) -> None:
        self.network = network
        self.node_id = node_id
        network.register(self)

    @property
    def sim(self) -> Simulator:
        """The simulator this node runs on."""
        return self.network.sim

    def send(self, recipient: int, kind: str, payload: Any = None,
             size_bytes: int = 0) -> None:
        """Send a message; it arrives after the one-way network delay."""
        self.network.send(Message(
            sender=self.node_id,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
        ))

    def handle_message(self, message: Message) -> None:
        """Process a delivered message (override in subclasses)."""
        raise NotImplementedError
