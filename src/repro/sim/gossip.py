"""Live network-coordinate maintenance inside the simulator.

The batch driver in :mod:`repro.coords.embedding` embeds a matrix outside
any simulation.  :class:`CoordinateGossip` instead runs the coordinate
system the way a deployment would: every simulated node periodically
pings a random peer (a real message exchange over the
:class:`~repro.sim.node.Network`) and updates its Vivaldi/RNP state from
the measured RTT.  The storage layer reads current coordinates from here
when routing requests.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.coords.rnp import RNPNode
from repro.coords.space import EuclideanSpace
from repro.coords.vivaldi import VivaldiNode
from repro.sim.node import Network
from repro.sim.process import PeriodicProcess

__all__ = ["CoordinateGossip"]

#: Bytes of a coordinate-gossip probe/reply: a float64 vector plus the
#: error estimate and a small header.
def _probe_bytes(space: EuclideanSpace) -> int:
    return 8 * space.vector_size + 8 + 16


class CoordinateGossip:
    """Runs a decentralized coordinate system over simulated gossip.

    Parameters
    ----------
    network:
        The message fabric (its latency matrix is the ground truth the
        coordinates learn).
    node_ids:
        Which nodes participate (defaults to every matrix row, whether
        or not a :class:`~repro.sim.node.Node` object exists for it —
        gossip is modelled as its own traffic).
    system:
        ``"vivaldi"`` or ``"rnp"``.
    period:
        Milliseconds between probes per node.
    space:
        Coordinate space (default 3-D + height, Vivaldi's standard).
    """

    def __init__(self, network: Network,
                 node_ids: list[int] | None = None,
                 system: Literal["vivaldi", "rnp"] = "rnp",
                 period: float = 500.0,
                 space: EuclideanSpace | None = None,
                 jitter: float = 0.1) -> None:
        self.network = network
        self.space = space or EuclideanSpace(dim=3, use_height=True)
        self.node_ids = list(node_ids) if node_ids is not None else list(
            range(network.matrix.n))
        if len(self.node_ids) < 2:
            raise ValueError("gossip needs at least two participants")
        sim = network.sim
        rng = sim.rng("coordinate-gossip")
        if system == "vivaldi":
            self.nodes = {i: VivaldiNode(self.space, rng=rng)
                          for i in self.node_ids}
        elif system == "rnp":
            self.nodes = {i: RNPNode(self.space, rng=rng)
                          for i in self.node_ids}
        else:
            raise ValueError(f"unknown coordinate system {system!r}")
        self.system = system
        self.probes = 0
        self._stopped = False
        self._rng = rng
        self._process = PeriodicProcess(
            sim, period, self._round, jitter=jitter, rng=rng,
            start_after=0.0,
        )

    def _round(self) -> None:
        """One gossip round: every participant probes one random peer.

        The RTT sample becomes available one round-trip later; we model
        that by scheduling the coordinate update after the true RTT and
        charging probe + reply bytes to the network's tally.
        """
        sim = self.network.sim
        size = _probe_bytes(self.space)
        n = len(self.node_ids)
        for idx, i in enumerate(self.node_ids):
            if not self.network.is_up(i):
                continue  # a crashed node neither probes nor replies
            j = self.node_ids[(idx + 1 + int(self._rng.integers(0, n - 1))) % n]
            if j == i:
                j = self.node_ids[(idx + 1) % n]
            if not self.network.is_up(j):
                continue  # probe to a dead peer is lost; nothing learned
            rtt = self.network.matrix.latency(i, j)
            self.network.stats.record_send(size)
            self.network.stats.record_receive(size)
            self.network.per_kind_bytes["coord-probe"] = (
                self.network.per_kind_bytes.get("coord-probe", 0) + 2 * size
            )
            sim.schedule(rtt, self._apply_sample, i, j, rtt)
            self.probes += 1

    def _apply_sample(self, i: int, j: int, rtt: float) -> None:
        if self._stopped:
            return  # a sample still in flight when gossip was stopped
        if i not in self.nodes or j not in self.nodes:
            return  # one endpoint left while the probe was in flight
        remote = self.nodes[j]
        self.nodes[i].update(remote.coords, remote.error, rtt)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, bootstrap_probes: int = 8) -> None:
        """A new node joins the running coordinate system.

        The joiner immediately probes ``bootstrap_probes`` random
        existing participants (results applied after the true RTT, like
        any measurement) so its coordinate is usable within a couple of
        round-trips instead of a full convergence period; afterwards it
        gossips like everyone else.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already participates")
        if not 0 <= node_id < self.network.matrix.n:
            raise ValueError(f"node {node_id} outside the matrix")
        if self.system == "vivaldi":
            self.nodes[node_id] = VivaldiNode(self.space, rng=self._rng)
        else:
            self.nodes[node_id] = RNPNode(self.space, rng=self._rng)
        existing = [i for i in self.node_ids if i != node_id]
        self.node_ids.append(node_id)
        sim = self.network.sim
        size = _probe_bytes(self.space)
        probes = min(bootstrap_probes, len(existing))
        targets = self._rng.choice(len(existing), size=probes, replace=False)
        for t in targets:
            j = existing[int(t)]
            rtt = self.network.matrix.latency(node_id, j)
            self.network.stats.record_send(size)
            self.network.stats.record_receive(size)
            self.network.per_kind_bytes["coord-probe"] = (
                self.network.per_kind_bytes.get("coord-probe", 0) + 2 * size
            )
            sim.schedule(rtt, self._apply_sample, node_id, j, rtt)
            self.probes += 1

    def remove_node(self, node_id: int) -> None:
        """A node leaves; its coordinate state is discarded."""
        if node_id not in self.nodes:
            raise ValueError(f"node {node_id} does not participate")
        if len(self.nodes) <= 2:
            raise ValueError("gossip needs at least two participants")
        del self.nodes[node_id]
        self.node_ids.remove(node_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def coords_of(self, node_id: int) -> np.ndarray:
        """Current coordinates of ``node_id``."""
        return self.nodes[node_id].coords

    def planar_coords(self) -> np.ndarray:
        """``(n, dim)`` planar coordinates for all matrix rows.

        Non-participants get zeros; callers normally gossip on all nodes.
        """
        out = np.zeros((self.network.matrix.n, self.space.dim))
        for i, node in self.nodes.items():
            out[i] = node.coords[:self.space.dim]
        return out

    def full_coords(self) -> np.ndarray:
        """``(n, vector_size)`` raw coordinates for all matrix rows."""
        out = np.zeros((self.network.matrix.n, self.space.vector_size))
        for i, node in self.nodes.items():
            out[i] = node.coords
        return out

    def stop(self) -> None:
        """Stop gossiping (coordinates freeze at their current values)."""
        self._stopped = True
        self._process.stop()
