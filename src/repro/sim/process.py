"""Periodic processes: repeating simulator callbacks with optional jitter.

Used for coordinate gossip, client access workloads and the placement
epoch timer.  A process reschedules itself after every tick until
:meth:`PeriodicProcess.stop` is called.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.sim.simulator import Simulator

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Call ``callback()`` every ``period`` ms, with optional jitter.

    Parameters
    ----------
    sim:
        Simulator to schedule on.
    period:
        Nominal interval between ticks in milliseconds.
    callback:
        Invoked once per tick.
    jitter:
        Each interval is multiplied by ``uniform(1 - jitter, 1 + jitter)``;
        zero (the default) means strictly periodic.
    rng:
        Randomness for the jitter (required when ``jitter > 0``).
    start_after:
        Delay before the first tick; defaults to one period.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], Any], jitter: float = 0.0,
                 rng: np.random.Generator | None = None,
                 start_after: float | None = None) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.jitter = jitter
        self.rng = rng
        self.ticks = 0
        self._running = True
        first = self._interval() if start_after is None else start_after
        self._pending = sim.schedule(first, self._tick)

    def _interval(self) -> float:
        if self.jitter == 0.0:
            return self.period
        assert self.rng is not None
        return self.period * self.rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self.callback()
        if self._running:
            self._pending = self.sim.schedule(self._interval(), self._tick)

    def stop(self) -> None:
        """Halt the process; a pending tick is cancelled."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()

    @property
    def running(self) -> bool:
        """Whether the process will tick again."""
        return self._running
