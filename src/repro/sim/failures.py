"""Failure injection: crash-stop nodes and bring them back.

The paper defers "data availability" to future work; this module builds
the substrate for it.  A :class:`FailureInjector` marks nodes of a
:class:`~repro.sim.node.Network` as down — messages to or from a down
node are silently dropped, exactly the symptom a wide-area system
observes — and schedules recoveries, either explicitly or as a random
crash/repair process.  Layers above (the store's availability monitor,
client read retries) react to the symptoms, never to the injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.sim.node import Network
from repro.sim.simulator import Simulator

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One recorded transition for the failure timeline."""

    time: float
    node: int
    kind: str  # "crash" or "recover"


class FailureInjector:
    """Crash and recover nodes on a network.

    Parameters
    ----------
    network:
        The fabric whose deliveries are affected.
    on_crash / on_recover:
        Optional hooks ``(node_id) -> None`` fired at transition time
        (the store uses them to refresh replica availability promptly;
        without hooks it discovers failures at its next monitor tick).
    """

    def __init__(self, network: Network,
                 on_crash: Callable[[int], None] | None = None,
                 on_recover: Callable[[int], None] | None = None) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.on_crash = on_crash
        self.on_recover = on_recover
        self.timeline: list[FailureEvent] = []

    # ------------------------------------------------------------------
    # Explicit schedule
    # ------------------------------------------------------------------
    def crash_at(self, time: float, node: int) -> None:
        """Crash ``node`` at absolute simulated ``time``."""
        self.sim.schedule_at(time, self._crash, node)

    def recover_at(self, time: float, node: int) -> None:
        """Recover ``node`` at absolute simulated ``time``."""
        self.sim.schedule_at(time, self._recover, node)

    def crash_now(self, node: int) -> None:
        """Crash ``node`` immediately."""
        self._crash(node)

    def recover_now(self, node: int) -> None:
        """Recover ``node`` immediately."""
        self._recover(node)

    # ------------------------------------------------------------------
    # Random crash/repair process
    # ------------------------------------------------------------------
    def random_failures(self, nodes: Sequence[int], mtbf_ms: float,
                        mttr_ms: float, until: float,
                        rng: np.random.Generator) -> int:
        """Schedule an exponential crash/repair process per node.

        Each node independently alternates up/down with exponential
        times-to-failure (mean ``mtbf_ms``) and times-to-repair (mean
        ``mttr_ms``) until simulated time ``until``.  Returns the number
        of crash events scheduled.
        """
        if mtbf_ms <= 0 or mttr_ms <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if until <= self.sim.now:
            raise ValueError("horizon must be in the future")
        crashes = 0
        for node in nodes:
            t = self.sim.now + float(rng.exponential(mtbf_ms))
            while t < until:
                self.crash_at(t, int(node))
                crashes += 1
                t += float(rng.exponential(mttr_ms))
                if t >= until:
                    break
                self.recover_at(t, int(node))
                t += float(rng.exponential(mtbf_ms))
        return crashes

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _crash(self, node: int) -> None:
        if self.network.is_up(node):
            self.network.set_down(node)
            self.timeline.append(FailureEvent(self.sim.now, node, "crash"))
            if self.on_crash is not None:
                self.on_crash(node)

    def _recover(self, node: int) -> None:
        if not self.network.is_up(node):
            self.network.set_up(node)
            self.timeline.append(FailureEvent(self.sim.now, node, "recover"))
            if self.on_recover is not None:
                self.on_recover(node)

    def crashes(self) -> list[FailureEvent]:
        """All crash events so far."""
        return [e for e in self.timeline if e.kind == "crash"]
