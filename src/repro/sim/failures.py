"""Failure injection: crashes, network partitions and flaky links.

The paper defers "data availability" to future work; this module builds
the substrate for it.  A :class:`FailureInjector` perturbs a
:class:`~repro.sim.node.Network` three ways:

* **crash-stop nodes** — messages to or from a down node are silently
  dropped, exactly the symptom a wide-area system observes;
* **network partitions** — every link between two node groups is cut
  (both directions), healed later as a unit;
* **flaky links** — a directed link drops each message with a given
  probability (asymmetric loss), seeded from the simulator's named RNG
  streams so runs stay bit-deterministic.

Layers above (the store's availability monitor, client read retries,
the controller's coordinator failover) react to the symptoms, never to
the injector.

Determinism
-----------
Transitions scheduled for the *same* simulated instant are applied in
an explicit order, independent of the order the schedule calls were
made: repairs before failures (``recover``/``heal``/``link-fix`` ahead
of ``crash``/``partition``/``link-loss``), ties broken by the
transition's payload.  A node scheduled to both recover and crash at
time *t* therefore always ends *down* at *t* — failure wins the
instant — no matter which call came first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.sim.node import Network
from repro.sim.simulator import Simulator

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One recorded transition for the failure timeline.

    ``kind`` is one of ``crash``/``recover`` (``node`` is the affected
    node), ``partition``/``heal`` (``node`` is ``-1``; ``detail`` holds
    the two sorted groups) or ``link-loss``/``link-fix`` (``node`` is
    the sender; ``detail`` is ``(recipient,)`` or ``(recipient, loss)``).
    """

    time: float
    node: int
    kind: str
    detail: tuple = ()


#: Same-instant application order: repairs strictly before failures.
_KIND_RANK = {
    "recover": 0,
    "heal": 1,
    "link-fix": 2,
    "crash": 3,
    "partition": 4,
    "link-loss": 5,
}


@dataclass(frozen=True)
class _Transition:
    """One pending state change, with its deterministic sort key."""

    kind: str
    payload: tuple = ()

    def sort_key(self) -> tuple:
        return (_KIND_RANK[self.kind], repr(self.payload))


class FailureInjector:
    """Crash nodes, cut links and partition groups on a network.

    Parameters
    ----------
    network:
        The fabric whose deliveries are affected.
    on_crash / on_recover:
        Optional hooks ``(node_id) -> None`` fired at transition time
        (the store uses them to refresh replica availability promptly;
        without hooks it discovers failures at its next monitor tick).
    """

    def __init__(self, network: Network,
                 on_crash: Callable[[int], None] | None = None,
                 on_recover: Callable[[int], None] | None = None) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.on_crash = on_crash
        self.on_recover = on_recover
        self.timeline: list[FailureEvent] = []
        #: Pending transitions per simulated instant (see module notes).
        self._pending: dict[float, list[_Transition]] = {}

    # ------------------------------------------------------------------
    # Explicit schedule
    # ------------------------------------------------------------------
    def crash_at(self, time: float, node: int) -> None:
        """Crash ``node`` at absolute simulated ``time``."""
        self._schedule(time, _Transition("crash", (int(node),)))

    def recover_at(self, time: float, node: int) -> None:
        """Recover ``node`` at absolute simulated ``time``."""
        self._schedule(time, _Transition("recover", (int(node),)))

    def crash_now(self, node: int) -> None:
        """Crash ``node`` immediately."""
        self._crash(node)

    def recover_now(self, node: int) -> None:
        """Recover ``node`` immediately."""
        self._recover(node)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition_now(self, group_a: Sequence[int],
                      group_b: Sequence[int] | None = None) -> None:
        """Cut every link between two groups, in both directions.

        ``group_b`` defaults to *every other registered node* — the
        classic "minority island" cut.  Groups may not overlap.
        """
        self._partition(*self._groups(group_a, group_b))

    def partition_at(self, time: float, group_a: Sequence[int],
                     group_b: Sequence[int] | None = None) -> None:
        """Schedule a partition at absolute simulated ``time``."""
        self._schedule(time, _Transition(
            "partition", self._groups(group_a, group_b)))

    def heal_now(self, group_a: Sequence[int],
                 group_b: Sequence[int] | None = None) -> None:
        """Restore every link between two previously partitioned groups."""
        self._heal(*self._groups(group_a, group_b))

    def heal_at(self, time: float, group_a: Sequence[int],
                group_b: Sequence[int] | None = None) -> None:
        """Schedule a partition heal at absolute simulated ``time``."""
        self._schedule(time, _Transition(
            "heal", self._groups(group_a, group_b)))

    def _groups(self, group_a: Sequence[int],
                group_b: Sequence[int] | None) -> tuple[tuple, tuple]:
        a = tuple(sorted(int(n) for n in group_a))
        if group_b is None:
            b = tuple(sorted(set(self.network.nodes) - set(a)))
        else:
            b = tuple(sorted(int(n) for n in group_b))
        if set(a) & set(b):
            raise ValueError("partition groups must be disjoint")
        if not a or not b:
            raise ValueError("partition groups must be non-empty")
        return a, b

    # ------------------------------------------------------------------
    # Flaky links
    # ------------------------------------------------------------------
    def flaky_link_now(self, a: int, b: int, loss: float,
                       symmetric: bool = False) -> None:
        """Make the ``a -> b`` link drop messages with probability ``loss``."""
        self._flaky(int(a), int(b), float(loss), bool(symmetric))

    def flaky_link_at(self, time: float, a: int, b: int, loss: float,
                      symmetric: bool = False) -> None:
        """Schedule link flakiness at absolute simulated ``time``."""
        self._schedule(time, _Transition(
            "link-loss", (int(a), int(b), float(loss), bool(symmetric))))

    def fix_link_now(self, a: int, b: int, symmetric: bool = False) -> None:
        """Make the ``a -> b`` link reliable again."""
        self._fix(int(a), int(b), bool(symmetric))

    def fix_link_at(self, time: float, a: int, b: int,
                    symmetric: bool = False) -> None:
        """Schedule a link fix at absolute simulated ``time``."""
        self._schedule(time, _Transition(
            "link-fix", (int(a), int(b), bool(symmetric))))

    # ------------------------------------------------------------------
    # Random crash/repair process
    # ------------------------------------------------------------------
    def random_failures(self, nodes: Sequence[int], mtbf_ms: float,
                        mttr_ms: float, until: float,
                        rng: np.random.Generator) -> int:
        """Schedule an exponential crash/repair process per node.

        Each node independently alternates up/down with exponential
        times-to-failure (mean ``mtbf_ms``) and times-to-repair (mean
        ``mttr_ms``) until simulated time ``until``.  Returns the number
        of crash events scheduled.
        """
        if mtbf_ms <= 0 or mttr_ms <= 0:
            raise ValueError("MTBF and MTTR must be positive")
        if until <= self.sim.now:
            raise ValueError("horizon must be in the future")
        crashes = 0
        for node in nodes:
            t = self.sim.now + float(rng.exponential(mtbf_ms))
            while t < until:
                self.crash_at(t, int(node))
                crashes += 1
                t += float(rng.exponential(mttr_ms))
                if t >= until:
                    break
                self.recover_at(t, int(node))
                t += float(rng.exponential(mtbf_ms))
        return crashes

    # ------------------------------------------------------------------
    # Deterministic same-instant application
    # ------------------------------------------------------------------
    def _schedule(self, time: float, transition: _Transition) -> None:
        batch = self._pending.get(time)
        if batch is None:
            batch = self._pending[time] = []
            # One simulator event per distinct instant applies the whole
            # batch in sorted order, so the outcome cannot depend on the
            # order the crash_at/recover_at calls were made.
            self.sim.schedule_at(time, self._apply_batch, time)
        batch.append(transition)

    def _apply_batch(self, time: float) -> None:
        batch = self._pending.pop(time, [])
        for transition in sorted(batch, key=_Transition.sort_key):
            self._apply(transition)

    def _apply(self, transition: _Transition) -> None:
        kind, payload = transition.kind, transition.payload
        if kind == "crash":
            self._crash(*payload)
        elif kind == "recover":
            self._recover(*payload)
        elif kind == "partition":
            self._partition(*payload)
        elif kind == "heal":
            self._heal(*payload)
        elif kind == "link-loss":
            self._flaky(*payload)
        elif kind == "link-fix":
            self._fix(*payload)
        else:  # pragma: no cover - _KIND_RANK gates every constructor
            raise ValueError(f"unknown transition kind {kind!r}")

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _crash(self, node: int) -> None:
        if self.network.is_up(node):
            self.network.set_down(node)
            self.timeline.append(FailureEvent(self.sim.now, node, "crash"))
            if self.on_crash is not None:
                self.on_crash(node)

    def _recover(self, node: int) -> None:
        if not self.network.is_up(node):
            self.network.set_up(node)
            self.timeline.append(FailureEvent(self.sim.now, node, "recover"))
            if self.on_recover is not None:
                self.on_recover(node)

    def _partition(self, group_a: tuple, group_b: tuple) -> None:
        for a in group_a:
            for b in group_b:
                self.network.set_link_down(a, b, symmetric=True)
        self.timeline.append(FailureEvent(
            self.sim.now, -1, "partition", (group_a, group_b)))

    def _heal(self, group_a: tuple, group_b: tuple) -> None:
        for a in group_a:
            for b in group_b:
                self.network.set_link_up(a, b, symmetric=True)
        self.timeline.append(FailureEvent(
            self.sim.now, -1, "heal", (group_a, group_b)))

    def _flaky(self, a: int, b: int, loss: float, symmetric: bool) -> None:
        self.network.set_link_loss(a, b, loss, symmetric=symmetric)
        self.timeline.append(FailureEvent(
            self.sim.now, a, "link-loss", (b, loss)))

    def _fix(self, a: int, b: int, symmetric: bool) -> None:
        self.network.clear_link_loss(a, b, symmetric=symmetric)
        self.timeline.append(FailureEvent(self.sim.now, a, "link-fix", (b,)))

    def crashes(self) -> list[FailureEvent]:
        """All crash events so far."""
        return [e for e in self.timeline if e.kind == "crash"]

    def partitions(self) -> list[FailureEvent]:
        """All partition events so far."""
        return [e for e in self.timeline if e.kind == "partition"]
