"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, seq)``: two events scheduled for the same
instant fire in scheduling order, which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Ordering compares ``time`` then ``seq``; the callback itself never
    participates in comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False, hash=False)

    def fire(self) -> None:
        """Invoke the callback (no-op when cancelled)."""
        if not object.__getattribute__(self, "cancelled"):
            self.callback(*self.args)

    def cancel(self) -> None:
        """Prevent the event from firing when popped."""
        object.__setattr__(self, "cancelled", True)


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[..., Any],
             args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (cancelled ones included)."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
