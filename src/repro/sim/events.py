"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, seq)``: two events scheduled for the same
instant fire in scheduling order, which makes runs fully deterministic.

``Event`` is a plain ``__slots__`` class rather than a dataclass: event
creation, comparison and cancellation sit on the simulator's hottest
path, and the frozen-dataclass ``object.__setattr__`` /
``__getattribute__`` indirection costs real time per event.  Cancelled
events become *tombstones* — they stay in the heap (removing an
arbitrary heap entry is O(n)) but the queue counts them and compacts the
heap once tombstones outnumber live events, so cancelling many timers
cannot leak memory for the rest of the run.

Inert events and barriers
-------------------------
An event may be scheduled *inert*: a promise by the scheduler that
firing it mutates no state any batched data plane bakes its decisions on
(clean read-request/reply deliveries and read retry timeouts qualify —
their effects land in order-tolerant sinks).  When barrier tracking is
enabled (it is off, and free, until a data plane attaches) the queue
mirrors every non-inert event into a second heap so
:meth:`EventQueue.next_barrier_time` can answer "when does the next
state-changing event fire?" in O(1) amortized — that time is the bound
up to which a data plane may process accesses in bulk.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]

# Below this heap size compaction is pointless churn — a handful of
# tombstones costs nothing and the filter+heapify would dominate.
_COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.

    Ordering compares ``time`` then ``seq``; the callback itself never
    participates in comparisons.  ``inert`` marks events whose firing
    cannot change batched-engine-visible state (see module docstring).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "inert",
                 "_queue")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple = (),
                 inert: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.inert = inert
        self._queue: EventQueue | None = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        return hash((self.time, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        state += " inert" if self.inert else ""
        return (f"Event(time={self.time!r}, seq={self.seq!r}, "
                f"callback={self.callback!r}{state})")

    def fire(self) -> None:
        """Invoke the callback (no-op when cancelled)."""
        if not self.cancelled:
            self.callback(*self.args)

    def cancel(self) -> None:
        """Prevent the event from firing when popped."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Cancelled events that are still queued are tracked as tombstones;
    when they outnumber the live events (and the heap is big enough for
    it to matter) the queue rebuilds itself without them.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._tombstones = 0
        self._track_barriers = False
        self._barriers: list[Event] = []
        #: Live non-inert events retired so far.  Each one is a bulk-
        #: window boundary a batched data plane had to stop at, so the
        #: counter measures how "choppy" a run was for bulk processing —
        #: the chaos benchmark reports it next to wall-clock time.
        self.barriers_fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def tombstones(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._tombstones

    def push(self, time: float, callback: Callable[..., Any],
             args: tuple = (), inert: bool = False) -> Event:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time, next(self._counter), callback, args, inert)
        event._queue = self
        heapq.heappush(self._heap, event)
        if self._track_barriers and not inert:
            heapq.heappush(self._barriers, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (cancelled ones included)."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        if event.cancelled:
            if self._tombstones > 0:
                self._tombstones -= 1
        elif not event.inert:
            self.barriers_fired += 1
        event._queue = None
        return event

    def peek_time(self) -> float:
        """Time of the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Barrier tracking (batched data planes)
    # ------------------------------------------------------------------
    def enable_barrier_tracking(self) -> None:
        """Start mirroring non-inert events into the barrier heap.

        Idempotent.  Already-queued events are adopted, so enabling
        mid-run is safe.  Tracking costs one extra heap push per
        non-inert event; it stays disabled (zero cost) until a data
        plane needs :meth:`next_barrier_time`.
        """
        if self._track_barriers:
            return
        self._track_barriers = True
        self._barriers = [e for e in self._heap
                          if not e.inert and not e.cancelled]
        heapq.heapify(self._barriers)

    def next_barrier_time(self) -> float:
        """Time of the earliest live non-inert event (inf when none).

        Stale entries — popped (fired) or cancelled events — are
        discarded lazily from the top of the barrier heap.
        """
        if not self._track_barriers:
            # Conservative fallback: every event is a potential barrier.
            return self._heap[0].time if self._heap else math.inf
        barriers = self._barriers
        while barriers and (barriers[0].cancelled
                            or barriers[0]._queue is not self):
            heapq.heappop(barriers)
        return barriers[0].time if barriers else math.inf

    def clear(self) -> None:
        """Drop all pending events."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._barriers.clear()
        self._tombstones = 0

    def compact(self) -> None:
        """Rebuild the heap without tombstones (preserves event order)."""
        if not self._tombstones:
            return
        for event in self._heap:
            if event.cancelled:
                event._queue = None
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._tombstones = 0
        if self._track_barriers:
            self._barriers = [e for e in self._barriers
                              if not e.cancelled and e._queue is self]
            heapq.heapify(self._barriers)

    def _note_cancelled(self) -> None:
        self._tombstones += 1
        if (len(self._heap) >= _COMPACT_MIN_SIZE
                and self._tombstones * 2 > len(self._heap)):
            self.compact()
