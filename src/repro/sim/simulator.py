"""The simulator core: clock, scheduler and named RNG streams.

Typical use::

    sim = Simulator(seed=42)
    sim.schedule(10.0, my_callback, arg1, arg2)   # 10 ms from now
    sim.run_until(60_000.0)                       # one simulated minute

Determinism: all randomness must come from :meth:`Simulator.rng` streams,
which are derived from the seed and the stream name, so two runs with the
same seed produce identical event sequences regardless of the order in
which streams are first requested.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A discrete-event simulator with a millisecond clock.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self.events_processed = 0
        self._data_planes: list[Any] = []

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """A named, seed-derived random stream (stable across runs).

        The child seed derives from ``(master seed, crc32(name))`` — a
        *stable* hash, never Python's randomized ``hash()``, so the same
        seed produces identical simulations across processes.
        """
        if name not in self._rngs:
            digest = zlib.crc32(name.encode("utf-8"))
            self._rngs[name] = np.random.default_rng(
                np.random.SeedSequence(entropy=(self._seed, digest))
            )
        return self._rngs[name]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, inert: bool = False) -> Event:
        """Run ``callback(*args)`` after ``delay`` milliseconds.

        ``inert=True`` promises that firing the event mutates no state a
        batched data plane bakes decisions on (see
        :mod:`repro.sim.events`); such events do not end bulk windows.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, callback, args, inert)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any, inert: bool = False) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time} < now={self.now})"
            )
        return self.queue.push(time, callback, args, inert)

    # ------------------------------------------------------------------
    # Data planes (batched engines)
    # ------------------------------------------------------------------
    def attach_data_plane(self, plane: Any) -> None:
        """Register a batched data plane with the event loop.

        A data plane is anything with an ``advance(bound: float)`` method.
        Before every event the loop calls ``advance`` with the next event
        time (and once more with the horizon when the queue drains), so
        the plane can generate and apply whole windows of data-plane work
        in bulk between control-plane events.  ``advance`` must be
        idempotent over already-covered time and may schedule new events
        (escalations) at or after the current clock.
        """
        if plane not in self._data_planes:
            self._data_planes.append(plane)
            self.queue.enable_barrier_tracking()

    def detach_data_plane(self, plane: Any) -> None:
        """Unregister a previously attached data plane (no-op if absent)."""
        if plane in self._data_planes:
            self._data_planes.remove(plane)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.now = event.time
        event.fire()
        self.events_processed += 1
        return True

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue (optionally bounded by ``max_events``)."""
        registry = obs.get_registry()
        count = 0
        planes = self._data_planes
        with registry.phase("sim.run"):
            while self.queue:
                if max_events is not None and count >= max_events:
                    break
                if planes:
                    bound = self.queue.peek_time()
                    for plane in planes:
                        plane.advance(bound)
                    if not self.queue:  # pragma: no cover - defensive
                        break
                self.step()
                count += 1
        if registry.enabled:
            registry.counter("sim.events_processed").inc(count)

    def run_until(self, time: float) -> None:
        """Process events up to and including simulated ``time``.

        The clock is left at ``time`` even if the queue empties earlier,
        so periodic measurements can rely on it.
        """
        if time < self.now:
            raise ValueError("cannot run backwards")
        registry = obs.get_registry()
        count = 0
        planes = self._data_planes
        queue = self.queue
        with registry.phase("sim.run"):
            if planes:
                # Interleave bulk data-plane windows with control events.
                # The window bound is the next *barrier* (non-inert
                # event) — inert events (clean read chains) fire without
                # ending the window because their effects land in
                # order-tolerant sinks.  After advancing, fire the run
                # of inert events plus at most one barrier, then
                # recompute: the barrier (or an escalation the plane
                # scheduled) may have changed state or added barriers.
                while True:
                    bound = min(queue.next_barrier_time(), time)
                    for plane in planes:
                        plane.advance(bound)
                    if not (queue and queue.peek_time() <= time):
                        break
                    while queue and queue.peek_time() <= time:
                        event = queue.pop()
                        self.now = event.time
                        inert = event.inert
                        event.fire()
                        self.events_processed += 1
                        count += 1
                        if not inert:
                            break
            else:
                while queue and queue.peek_time() <= time:
                    self.step()
                    count += 1
        self.now = time
        for plane in planes:
            flush = getattr(plane, "flush", None)
            if flush is not None:
                flush()
        if registry.enabled:
            registry.counter("sim.events_processed").inc(count)
