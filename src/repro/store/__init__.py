"""A replicated object store running on the simulator.

This is the storage substrate the paper assumes (in the spirit of
Dynamo / Cassandra / PNUTS, its references [4]-[6]): data objects are
replicated across data-center servers; clients read the closest replica;
and the placement controller gradually migrates replicas to better
sites.  It exercises every piece of the library end-to-end inside the
discrete-event simulator:

* :class:`StorageServer` — holds replicas, answers reads/writes, feeds
  each access into the per-replica micro-cluster summary;
* :class:`StorageClient` — issues reads/writes, choosing a replica by
  network-coordinate prediction (or a true-latency oracle);
* :class:`ReplicatedStore` — wiring: object catalog, replica sets,
  migration execution, placement epochs, access metrics;
* :mod:`repro.store.consistency` — the paper's stated future work,
  built as an extension: asynchronous update propagation between
  replicas and quorum reads (R out of k);
* :mod:`repro.store.queueing` — per-server service-time models and
  bounded FIFO queues (reads wait behind earlier admitted work);
* :mod:`repro.store.selection` — pluggable client replica-selection
  strategies: ``nearest`` (the paper's, bitwise default),
  ``least-pending``, ``c3``-style rate-adaptive scoring.
"""

from repro.store.objects import AccessRecord, DataObject, AccessLog
from repro.store.kvstore import ReplicatedStore, StorageClient, StorageServer
from repro.store.consistency import ConsistencyConfig, QuorumError
from repro.store.batched import BatchedAccessEngine, BatchedAccessWorkload
from repro.store.queueing import (
    DeterministicService,
    LogNormalService,
    QueueingConfig,
    ServerQueue,
    ServiceModel,
)
from repro.store.selection import (
    C3Selection,
    EwmaTracker,
    LeastPendingSelection,
    NearestSelection,
    SelectionStrategy,
    make_strategy,
)

__all__ = [
    "AccessRecord",
    "AccessLog",
    "DataObject",
    "ReplicatedStore",
    "StorageClient",
    "StorageServer",
    "ConsistencyConfig",
    "QuorumError",
    "BatchedAccessEngine",
    "BatchedAccessWorkload",
    "ServiceModel",
    "DeterministicService",
    "LogNormalService",
    "ServerQueue",
    "QueueingConfig",
    "SelectionStrategy",
    "NearestSelection",
    "LeastPendingSelection",
    "C3Selection",
    "EwmaTracker",
    "make_strategy",
]
