"""Consistency extensions: async update propagation and quorum reads.

The paper assumes read-mostly objects served by a single closest replica
and defers quorum protocols to future work (Section II-A).  This module
builds that future work so the store can also run update-heavy
workloads:

* writes are versioned (last-writer-wins, store-assigned monotonic
  versions) and propagate asynchronously from the replica that accepted
  them to its peers;
* reads may contact ``read_quorum`` replicas in parallel and return the
  freshest version among the responses — trading extra traffic for a
  lower chance of staleness, exactly the trade-off the paper sketches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConsistencyConfig", "QuorumError"]


class QuorumError(ValueError):
    """Raised when a quorum cannot be formed from the installed replicas."""


@dataclass(frozen=True)
class ConsistencyConfig:
    """Read/write behaviour of the store.

    Attributes
    ----------
    read_quorum:
        Replicas contacted in parallel per read.  ``1`` is the paper's
        closest-replica model; larger values implement quorum reads
        (capped at the number of installed replicas at read time).
    propagate_updates:
        Ship accepted writes asynchronously to the other replicas.
        Disabling models the paper's read-only evaluation where update
        cost is ignored.
    propagation_delay_ms:
        Extra server-side delay before a write starts propagating
        (batching window); zero propagates immediately.
    """

    read_quorum: int = 1
    propagate_updates: bool = True
    propagation_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        # Full construction-time validation: the config is consulted on
        # every read and write, so a bad value (``NaN`` slips past both
        # plain comparisons below) would corrupt runs silently instead
        # of failing here.
        if isinstance(self.read_quorum, bool) or \
                not isinstance(self.read_quorum, int):
            raise ValueError("read quorum must be an integer")
        if self.read_quorum < 1:
            raise ValueError("read quorum must be at least 1")
        if not isinstance(self.propagate_updates, bool):
            raise ValueError("propagate_updates must be a boolean")
        delay = self.propagation_delay_ms
        if isinstance(delay, bool) or not isinstance(delay, (int, float)):
            raise ValueError("propagation delay must be a number")
        if math.isnan(delay):
            raise ValueError("propagation delay must not be NaN")
        if math.isinf(delay):
            raise ValueError("propagation delay must be finite")
        if delay < 0:
            raise ValueError("propagation delay must be non-negative")
