"""Client-side replica selection strategies as policy objects.

The paper's clients always read the *nearest* replica.  That is optimal
when servers are uncontended, and collapses under load: every client
near a hotspot piles onto the same server while its siblings idle.
This module turns the choice into a policy object (in the style of
absim's client simulation — pending-request maps, per-replica latency
trackers, a pluggable selection strategy):

* :class:`NearestSelection` — today's behaviour, bitwise-preserved.
  The default; the differential suite certifies that a store built
  with it is byte-identical to the pre-strategy store.
* :class:`LeastPendingSelection` — prefer the replica with the fewest
  requests this client has in flight to it; distance breaks ties.
  The classic least-outstanding-requests load balancer.
* :class:`C3Selection` — rate-adaptive scoring: an EWMA of observed
  per-replica reply latency, inflated by the cube of the client's
  outstanding requests to that replica (the C3 replica-ranking shape:
  ``ewma * (1 + pending)^3``).  Unobserved replicas fall back to their
  distance key, so cold-start behaviour is nearest-replica.

All state is **client-local** (per ``(client, server)`` pair): a real
client knows only what it sent and what came back, never the server's
true queue depth.  Strategies see the store only through
``store._distance_keys`` plus the issue/reply/failure notifications the
client machinery feeds them, which keeps them trivially portable to
the property-test harness.

Determinism: strategies are pure functions of (distance keys, their
own notification history); they draw no randomness and break every
tie by ascending site id, so two runs with the same seed rank
identically on both engines.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "SelectionStrategy",
    "NearestSelection",
    "LeastPendingSelection",
    "C3Selection",
    "EwmaTracker",
    "make_strategy",
    "STRATEGIES",
]

#: Strategy aliases accepted by :func:`make_strategy` (store
#: constructor, scenario files, catalog sweeps, CLI flags).
STRATEGIES = ("nearest", "least-pending", "c3")


class EwmaTracker:
    """Exponentially weighted moving average of latency samples.

    ``alpha`` is the *retention* weight: after a sample ``x`` the value
    becomes ``alpha * value + (1 - alpha) * x`` (the first sample seeds
    the value directly).  Because every update is a convex combination
    of the old value and the sample, the tracked value always lies
    within ``[min(samples), max(samples)]`` — the invariant the
    property suite pins.
    """

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = 0.9) -> None:
        alpha = float(alpha)
        if not 0.0 <= alpha < 1.0 or not math.isfinite(alpha):
            raise ValueError("alpha must lie in [0, 1)")
        self.alpha = alpha
        self.value: float | None = None
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one sample in; return the new value."""
        sample = float(sample)
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * self.value + (1 - self.alpha) * sample
        self.samples += 1
        return self.value


class SelectionStrategy:
    """Ranks replica sites for a client; observes request lifecycles.

    :meth:`rank` must return the given sites reordered best-first,
    deterministically (no RNG, ties by site id).  The notification
    hooks are called by the client machinery: ``note_issued`` when a
    request leg is sent, ``note_reply`` when a reply arrives (with the
    observed latency), ``note_failure`` when a read gives up on its
    outstanding legs (final timeout).  The base hooks are no-ops, so a
    stateless strategy pays nothing.
    """

    #: Whether the batched engine may bulk-serve reads routed by this
    #: strategy.  Only ``nearest`` qualifies: its ranking is a pure
    #: function of frozen window state, while pending-aware strategies
    #: change their answer with every in-flight request, so the engine
    #: escalates their reads to the per-event path (exact, not fast).
    supports_bulk = False

    def rank(self, client: int, sites: Sequence[int], store) -> list[int]:
        raise NotImplementedError

    def note_issued(self, client: int, server: int) -> None:
        pass

    def note_reply(self, client: int, server: int,
                   latency_ms: float) -> None:
        pass

    def note_failure(self, client: int, servers: Sequence[int]) -> None:
        pass


class NearestSelection(SelectionStrategy):
    """Closest replica first — the paper's model, bitwise-preserved.

    The body is exactly the store's historical ``_rank_sites``: the
    same distance keys, the same ``sorted(zip(keys, sites))`` (whose
    tuple comparison breaks distance ties by ascending site id).  The
    differential suite certifies byte-identical runs.
    """

    supports_bulk = True

    def rank(self, client: int, sites: Sequence[int], store) -> list[int]:
        keys = store._distance_keys(client, sites)
        return [s for _, s in sorted(zip(keys, sites))]


class _PendingMixin:
    """Client-local pending-request counts per (client, server)."""

    def __init__(self) -> None:
        self._pending: dict[tuple[int, int], int] = {}

    def pending(self, client: int, server: int) -> int:
        return self._pending.get((client, server), 0)

    def note_issued(self, client: int, server: int) -> None:
        key = (client, server)
        self._pending[key] = self._pending.get(key, 0) + 1

    def _release(self, client: int, server: int) -> None:
        key = (client, server)
        count = self._pending.get(key, 0)
        if count <= 1:
            self._pending.pop(key, None)
        else:
            self._pending[key] = count - 1

    def note_reply(self, client: int, server: int,
                   latency_ms: float) -> None:
        self._release(client, server)

    def note_failure(self, client: int, servers: Sequence[int]) -> None:
        for server in servers:
            self._release(client, server)


class LeastPendingSelection(_PendingMixin, SelectionStrategy):
    """Fewest outstanding requests first; distance breaks ties.

    The client-local least-outstanding-requests balancer: a replica
    the client is already waiting on ranks behind an idle one even if
    it is closer, which is exactly what spreads a hotspot's load over
    the replica set and collapses the p999 queueing tail (the nightly
    ``BENCH_tail.json`` benchmark measures this against ``nearest``).
    """

    def rank(self, client: int, sites: Sequence[int], store) -> list[int]:
        keys = store._distance_keys(client, sites)
        return [s for _, _, s in sorted(
            (self.pending(client, s), k, s)
            for k, s in zip(keys, sites))]


class C3Selection(_PendingMixin, SelectionStrategy):
    """C3-style rate-adaptive scoring with EWMA latency trackers.

    Each ``(client, server)`` pair keeps an EWMA of observed reply
    latencies; a replica's score is ``ewma * (1 + pending)^3`` — the
    cubic penalty is C3's concurrency compensation, which backs off a
    slow-or-loaded replica *before* its queue shows up in averages.
    Replicas with no samples yet score by their distance key (scaled by
    the same pending penalty), so a cold store behaves like ``nearest``
    and the trackers warm up from real traffic.
    """

    def __init__(self, alpha: float = 0.9) -> None:
        super().__init__()
        self._alpha = float(alpha)
        self._trackers: dict[tuple[int, int], EwmaTracker] = {}

    def tracker(self, client: int, server: int) -> EwmaTracker | None:
        return self._trackers.get((client, server))

    def note_reply(self, client: int, server: int,
                   latency_ms: float) -> None:
        super().note_reply(client, server, latency_ms)
        key = (client, server)
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = EwmaTracker(self._alpha)
        tracker.update(latency_ms)

    def rank(self, client: int, sites: Sequence[int], store) -> list[int]:
        keys = store._distance_keys(client, sites)
        scored = []
        for k, s in zip(keys, sites):
            tracker = self._trackers.get((client, s))
            base = tracker.value if tracker is not None else float(k)
            penalty = (1 + self.pending(client, s)) ** 3
            scored.append((base * penalty, s))
        return [s for _, s in sorted(scored)]


def make_strategy(strategy: "SelectionStrategy | str | None"
                  ) -> SelectionStrategy:
    """Resolve a strategy alias (or pass a policy object through).

    ``None`` and ``"nearest"`` give :class:`NearestSelection` — the
    bitwise-preserved default.
    """
    if strategy is None:
        return NearestSelection()
    if isinstance(strategy, SelectionStrategy):
        return strategy
    if strategy == "nearest":
        return NearestSelection()
    if strategy == "least-pending":
        return LeastPendingSelection()
    if strategy == "c3":
        return C3Selection()
    raise ValueError(f"unknown selection strategy {strategy!r}; "
                     f"known: {STRATEGIES}")
