"""Per-server service-time models and bounded FIFO queues.

The paper's data plane is purely RTT-bound: a read's delay is the
round trip to the chosen replica, and a server answers any number of
simultaneous requests instantly.  At the "millions of users" scale the
ROADMAP targets, servers are *queue*-bound — a request that lands on a
busy server waits behind the work already there, and tail latency is
dominated by that waiting, not the network.  This module adds the
server side of that story:

* :class:`ServiceModel` — how long one request occupies the server:
  :class:`DeterministicService` (a constant, the M/D/1 setting) or
  :class:`LogNormalService` (heavy-tailed, seeded from the simulator's
  named ``"service"`` stream so runs stay bit-reproducible).
* :class:`ServerQueue` — one FIFO queue per :class:`StorageServer`:
  work-conserving single-server semantics (Lindley recursion), an
  optional bound on queued-plus-in-service depth, and offered /
  accepted / rejected counters.
* :class:`QueueingConfig` — the store-level knob bundle, with the
  degenerate-case contract the differential suite certifies: a
  configuration whose service time is identically zero and whose queue
  is unbounded is *bitwise identical* to running with no queueing at
  all, on both engines.

Queues apply to **reads** only.  Writes stay on the uncontended path:
they are rare in every evaluated workload, they are barriers under the
batched engine, and queueing them would entangle the version-bump
ordering that engine's correctness argument leans on.  See
``docs/queueing.md`` for the full model and the batched window
approximation built on top of it.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

__all__ = [
    "ServiceModel",
    "DeterministicService",
    "LogNormalService",
    "ServerQueue",
    "QueueingConfig",
    "SERVICE_MODELS",
]

#: Service-model names accepted by :meth:`QueueingConfig.from_params`
#: (scenario files, catalog sweeps, CLI flags).
SERVICE_MODELS = ("none", "deterministic", "lognormal")

#: Name of the simulator RNG stream stochastic service models draw from.
SERVICE_STREAM = "service"


class ServiceModel:
    """How long one admitted request occupies its server.

    Subclasses implement :meth:`draw` (one sample, consumed at request
    admission in event order) and :meth:`draw_block` (``n`` samples for
    a bulk window).  The two must be RNG-exact aliases: ``draw_block``
    consumes the simulator's ``"service"`` stream exactly as ``n``
    successive :meth:`draw` calls would, which is what lets the batched
    engine's window approximation share one seeded stream with the
    per-event oracle.
    """

    #: Whether the model can produce a nonzero service time.  ``False``
    #: keeps the store on the certified zero-service fast path.
    active = True

    def draw(self, sim) -> float:
        raise NotImplementedError

    def draw_block(self, sim, n: int) -> np.ndarray:
        raise NotImplementedError


class DeterministicService(ServiceModel):
    """Constant service time (the M/D/1 setting).  Draws no randomness.

    ``DeterministicService(0.0)`` is the degenerate no-queueing case:
    it reports itself inactive, so the store keeps the exact inline
    reply path and the batched engine keeps its certified bulk path.
    """

    def __init__(self, service_ms: float) -> None:
        service_ms = float(service_ms)
        if not math.isfinite(service_ms) or service_ms < 0:
            raise ValueError("service time must be finite and non-negative")
        self.service_ms = service_ms
        self.active = service_ms > 0

    def draw(self, sim) -> float:
        return self.service_ms

    def draw_block(self, sim, n: int) -> np.ndarray:
        return np.full(n, self.service_ms)

    def __repr__(self) -> str:
        return f"DeterministicService({self.service_ms})"


class LogNormalService(ServiceModel):
    """Log-normally distributed service time (heavy-tailed).

    ``median_ms`` is the distribution's median (``exp(mu)``);
    ``sigma`` the log-space standard deviation.  Samples come from the
    simulator's named ``"service"`` stream, so two runs with the same
    seed draw identical service times regardless of telemetry or
    engine — and ``draw_block`` fills arrays element-for-element from
    the same stream as repeated scalar draws (the property every other
    vectorized generator in :mod:`repro.workloads.batched` relies on).
    """

    def __init__(self, median_ms: float, sigma: float = 0.5) -> None:
        median_ms = float(median_ms)
        sigma = float(sigma)
        if not math.isfinite(median_ms) or median_ms <= 0:
            raise ValueError("service median must be finite and positive")
        if not math.isfinite(sigma) or sigma < 0:
            raise ValueError("service sigma must be finite and non-negative")
        self.median_ms = median_ms
        self.sigma = sigma
        self._mu = math.log(median_ms)

    def draw(self, sim) -> float:
        return float(sim.rng(SERVICE_STREAM).lognormal(self._mu, self.sigma))

    def draw_block(self, sim, n: int) -> np.ndarray:
        return sim.rng(SERVICE_STREAM).lognormal(self._mu, self.sigma, size=n)

    def __repr__(self) -> str:
        return f"LogNormalService({self.median_ms}, sigma={self.sigma})"


class ServerQueue:
    """Work-conserving FIFO queue state of one storage server.

    The canonical queue state is ``busy_until`` — the instant the
    server finishes everything admitted so far.  An admission at time
    ``now`` with service ``s`` starts at ``max(now, busy_until)`` and
    departs ``s`` later (the scalar Lindley recursion); the batched
    engine's vectorized window recursion reads and writes the same
    field, so per-event escalations and bulk windows share one backlog.

    With a depth bound, ``completions`` additionally tracks the
    departure time of every request still queued or in service, so the
    admission-time depth (and hence rejection) is exact.
    """

    __slots__ = ("busy_until", "completions", "offered", "accepted",
                 "rejected")

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.completions: deque[float] = deque()
        self.offered = 0
        self.accepted = 0
        self.rejected = 0

    def depth(self, now: float) -> int:
        """Requests queued or in service at ``now`` (bounded mode only)."""
        completions = self.completions
        while completions and completions[0] <= now:
            completions.popleft()
        return len(completions)

    def admit(self, now: float, service_ms: float,
              capacity: int | None = None) -> float | None:
        """Admit one request; return its departure time, or ``None``.

        ``None`` means the queue was full (``capacity`` requests already
        queued or in service) and the request is rejected — the caller
        drops it, which the client observes exactly like a lost message
        (its read timeout fires, retries run).
        """
        self.offered += 1
        if capacity is not None and self.depth(now) >= capacity:
            self.rejected += 1
            return None
        start = now if now > self.busy_until else self.busy_until
        finish = start + service_ms
        self.busy_until = finish
        self.accepted += 1
        if capacity is not None:
            self.completions.append(finish)
        return finish


class QueueingConfig:
    """Store-level queueing knobs: a service model plus a queue bound.

    Parameters
    ----------
    service:
        A :class:`ServiceModel`, or ``None`` for instantaneous service.
    queue_capacity:
        Maximum requests queued or in service per server; arrivals
        beyond it are rejected (dropped).  ``None`` = unbounded.

    The contract the differential suite pins: ``QueueingConfig()`` —
    and any config whose service time is identically zero with an
    unbounded queue — leaves every observable byte of a run identical
    to passing no config at all, on both engines.
    """

    def __init__(self, service: ServiceModel | None = None,
                 queue_capacity: int | None = None) -> None:
        if service is not None and not isinstance(service, ServiceModel):
            raise ValueError("service must be a ServiceModel or None")
        if queue_capacity is not None:
            if isinstance(queue_capacity, bool) or \
                    not isinstance(queue_capacity, int):
                raise ValueError("queue capacity must be an integer or None")
            if queue_capacity < 1:
                raise ValueError("queue capacity must be at least 1")
        self.service = service
        self.queue_capacity = queue_capacity

    @property
    def active(self) -> bool:
        """Whether this config can delay or reject any request.

        Inactive configs (zero service, unbounded queue) keep the store
        on the exact no-queueing code path — that equivalence is the
        anchor of the differential certification.
        """
        if self.queue_capacity is not None:
            return True
        return self.service is not None and self.service.active

    def sample_service(self, sim) -> float:
        """One service time (0.0 when no service model is set)."""
        if self.service is None:
            return 0.0
        return self.service.draw(sim)

    def sample_service_block(self, sim, n: int) -> np.ndarray:
        """``n`` service times, RNG-exact with ``n`` scalar samples."""
        if self.service is None:
            return np.zeros(n)
        return self.service.draw_block(sim, n)

    @staticmethod
    def from_params(service_model: str = "none", service_ms: float = 0.0,
                    service_sigma: float = 0.5,
                    queue_capacity: int | None = None
                    ) -> "QueueingConfig | None":
        """Build a config from flat knobs (scenario files, CLI, sweeps).

        Returns ``None`` when the knobs describe the unconfigured store
        (``service_model="none"`` and no capacity), so callers can pass
        the result straight to :class:`ReplicatedStore`.
        """
        if service_model not in SERVICE_MODELS:
            raise ValueError(f"unknown service model {service_model!r}; "
                             f"known: {SERVICE_MODELS}")
        if service_model == "none":
            if service_ms:
                raise ValueError("service_ms needs a service model")
            if queue_capacity is None:
                return None
            return QueueingConfig(queue_capacity=queue_capacity)
        if service_model == "deterministic":
            service: ServiceModel = DeterministicService(service_ms)
        else:
            service = LogNormalService(service_ms, service_sigma)
        return QueueingConfig(service=service, queue_capacity=queue_capacity)

    def __repr__(self) -> str:
        return (f"QueueingConfig(service={self.service!r}, "
                f"queue_capacity={self.queue_capacity})")
