"""Data objects and access metrics for the replicated store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = ["DataObject", "AccessRecord", "AccessLog"]


@dataclass
class DataObject:
    """One replicated data object (or object group, per Section II-A).

    Attributes
    ----------
    key:
        Object identifier.
    size_gb:
        Logical size; drives migration cost and replica-transfer byte
        counts.
    read_size_bytes:
        Payload of one read response.  Clients typically fetch a record
        or chunk, not the whole replica, so this defaults to 64 KiB;
        replica transfers (migration, update propagation) always move
        the full ``size_gb``.
    version:
        Monotonic write version (last-writer-wins).
    """

    key: str
    size_gb: float = 1.0
    read_size_bytes: int = 64 * 1024
    version: int = 0

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("object key must be non-empty")
        if self.size_gb <= 0:
            raise ValueError("object size must be positive")
        if self.read_size_bytes <= 0:
            raise ValueError("read size must be positive")

    @property
    def size_bytes(self) -> int:
        """Size in bytes (used for message accounting)."""
        return int(self.size_gb * 1024 ** 3)


@dataclass(frozen=True)
class AccessRecord:
    """One completed client access."""

    time: float
    client: int
    server: int
    key: str
    delay_ms: float
    kind: str = "read"
    version: int = 0
    stale: bool = False


class AccessLog:
    """Collects :class:`AccessRecord` entries and summarizes them.

    ``records`` is kept sorted by time *lazily*: the per-event store
    appends in event order (non-decreasing times), which never triggers
    a sort, while the batched engine appends whole completion-sorted
    windows interleaved with straggler records from real events — the
    first out-of-order append flags the log and the next read re-sorts
    it (stably, so equal-time records keep insertion order).
    """

    def __init__(self) -> None:
        self._records: list[AccessRecord] = []
        self._unsorted = False
        self._last_time = float("-inf")

    @property
    def records(self) -> list[AccessRecord]:
        if self._unsorted:
            self._records.sort(key=lambda r: r.time)
            self._unsorted = False
            self._last_time = (self._records[-1].time if self._records
                               else float("-inf"))
        return self._records

    def append(self, record: AccessRecord) -> None:
        if record.time >= self._last_time:
            self._last_time = record.time
        else:
            self._unsorted = True
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def delays(self, kind: str | None = None,
               since: float = 0.0) -> np.ndarray:
        """Delay samples in ms, optionally filtered by kind and time."""
        return np.array([
            r.delay_ms for r in self.records
            if (kind is None or r.kind == kind) and r.time >= since
        ])

    def mean_delay(self, kind: str | None = None, since: float = 0.0) -> float:
        """Mean access delay; the figure-of-merit of every experiment."""
        values = self.delays(kind, since)
        if values.size == 0:
            raise ValueError("no matching access records")
        return float(values.mean())

    def percentile_delay(self, q: float, kind: str | None = None) -> float:
        """``q``-th percentile delay."""
        values = self.delays(kind)
        if values.size == 0:
            raise ValueError("no matching access records")
        return float(np.percentile(values, q))

    def tail_quantiles(self, kind: str | None = None,
                       since: float = 0.0) -> dict[str, float]:
        """p50/p99/p999 delay in one pass — the tail-latency report.

        Returns zeros when no records match (an empty run has no tail),
        so sweep aggregation never branches on emptiness.
        """
        values = self.delays(kind, since)
        if values.size == 0:
            return {"p50": 0.0, "p99": 0.0, "p999": 0.0}
        p50, p99, p999 = np.percentile(values, (50.0, 99.0, 99.9))
        return {"p50": float(p50), "p99": float(p99), "p999": float(p999)}

    def stale_fraction(self) -> float:
        """Fraction of reads that returned a stale version."""
        reads = [r for r in self.records if r.kind == "read"]
        if not reads:
            return 0.0
        return sum(1 for r in reads if r.stale) / len(reads)

    def by_client(self) -> dict[int, list[AccessRecord]]:
        """Records grouped by client id."""
        grouped: dict[int, list[AccessRecord]] = {}
        for r in self.records:
            grouped.setdefault(r.client, []).append(r)
        return grouped

    def extend(self, records: Iterable[AccessRecord]) -> None:
        for r in records:
            self.append(r)
