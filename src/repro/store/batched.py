"""Batched data-plane engine: vectorized client accesses, exact semantics.

The reference path simulates every access as a chain of heap events:
workload tick -> request send -> request delivery (summary fold) ->
reply send -> reply delivery (log record).  At millions of accesses the
heap churn dominates wall-clock time even though, between control-plane
events, the outcome of each access is a pure function of frozen state.

:class:`BatchedAccessEngine` exploits exactly that.  It registers with
the simulator as a *data plane* (:meth:`Simulator.attach_data_plane`):
the event loop asks it to ``advance(bound)`` where ``bound`` is the next
*barrier* — the earliest non-inert event, i.e. the earliest instant
anything can mutate routing, versions, liveness, coordinates or loss
configuration.  Clean read chains are scheduled **inert** (see
:mod:`repro.sim.events`): their effects land only in order-tolerant
sinks — the lazily time-sorted :class:`~repro.store.objects.AccessLog`,
the store's deferred summary-fold buffer (flushed in access-time order
before every summary observation), and integer counters — so they fire
*without* ending a bulk window.  That keeps windows control-plane-sized
(epoch periods, chaos events) instead of event-sized, which is what
makes batching pay off.

Within a window the engine sorts each arrival into one of three buckets:

``A`` — *fully bulk*.  Clean reads (client and all quorum targets up,
    links uncut and loss-free, replicas installed) that complete
    strictly before the window's cutoff and carry no timeout risk.
    All their effects — traffic counters, delivery histograms, summary
    folds (deferred), access-log records — are applied vectorized.
``B`` — *hybrid*.  Clean-at-issue reads that outlive the window or may
    time out.  Send-side accounting is bulk; request deliveries and the
    retry timeout become real (inert) heap events via
    :meth:`StorageClient.materialize_read`, so replies, retries and
    timeouts run through the untouched per-event machinery and observe
    any barrier-time state change for real.
``C`` — *escalated*.  Writes; reads whose issue legs are not provably
    clean (down nodes, cut or lossy links, missing replicas); and reads
    issued at or after the window's **first write** (the write chain
    bumps versions, so the staleness bound must be read live).  Each is
    scheduled as a real ``client.read``/``client.write`` event at its
    tick time — byte-identical behaviour including ``"net.loss"`` RNG
    draws in heap order.  Writes are barriers; escalated reads are
    inert.

The window cutoff is ``min(bound, first write issue time)``: an A item's
entire effect chain completes strictly before anything non-bulk can
touch shared state, so state frozen at classification time is the state
every A effect would have observed.

Residual divergence is measure-zero tie-breaking (two floating-point
event times colliding exactly) plus float summation order inside
histogram *sum* fields; the differential test suite pins everything
else bitwise.
"""

from __future__ import annotations

import itertools
from typing import NamedTuple, Sequence

import numpy as np

from repro import obs
from repro.core.controller import ReplicationController
from repro.sim.simulator import Simulator
from repro.store.consistency import QuorumError
from repro.store.kvstore import REQUEST_BYTES, ReplicatedStore
from repro.store.objects import AccessRecord
from repro.workloads.batched import ArrivalBatch, WorkloadArrivals
from repro.workloads.population import ClientPopulation, ZipfObjectPopularity
from repro.workloads.temporal import TemporalPattern

__all__ = ["BatchedAccessEngine", "BatchedAccessWorkload"]


class _GroupInfo(NamedTuple):
    """Frozen routing/leg data for one (client, key) pair in a window."""

    client: int
    key: str
    targets: tuple[int, ...]
    d1: np.ndarray        # per-leg client -> server one-way delay
    d2: np.ndarray        # per-leg server -> client one-way delay
    versions: np.ndarray  # per-leg stored version
    vmax: int             # max(versions): the read's returned version
    latest: int           # latest committed version (staleness bound)
    read_size: int
    positions: tuple[int, ...]  # per-leg index into store.candidates
    unit: object                # the owning _PlacementUnit (fold buffer)


class BatchedAccessEngine:
    """Vectorized access delivery attached to a simulator data plane.

    Parameters
    ----------
    store:
        The replicated store accesses are issued against.  Attaching
        the engine switches the store to deferred summary folding
        (:meth:`ReplicatedStore.enable_fold_buffering`).
    source:
        An arrival generator — :class:`WorkloadArrivals` for live
        workloads, :class:`~repro.workloads.batched.TraceArrivals` for
        trace replay.  Its ``keys`` tuple defines the key index space.
    """

    #: Cache-miss sentinel (``None`` is a legitimate cached value: it
    #: means "this pair escalates until the fault state changes").
    _MISS = object()

    def __init__(self, store: ReplicatedStore, source) -> None:
        self.store = store
        self.source = source
        self.sim: Simulator = store.sim
        self.operations_issued = 0
        #: Reads the queued-mode window first bulk-served and then
        #: demoted to the per-event path because their *queued*
        #: completion crossed the window cutoff or the timeout horizon.
        #: Each demotion is one admission the oracle would have
        #: processed in-order — the approximation-error bound is
        #: proportional to this count (see docs/queueing.md).
        self.queue_demotions = 0
        #: Queue admissions performed by the vectorized window
        #: recursion (the complement of per-event admissions in
        #: ``store.queue_stats()["offered"]``).
        self.bulk_queue_admissions = 0
        queueing = store.queueing
        self._queue_mode = queueing is not None and queueing.active
        # Pending-aware selection strategies re-rank after every issued
        # read, and capacity-bounded queues admit based on live depth —
        # neither survives the frozen-window argument, so those runs
        # replay every arrival through the (exact) per-event path.
        self._escalate_all = (not store.strategy.supports_bulk
                              or (self._queue_mode
                                  and queueing.queue_capacity is not None))
        self._attached = True
        # Cross-window route cache.  A (client, key) group's _GroupInfo
        # is a pure function of (a) replica/version/installed state —
        # versioned by store._state_version — and (b) node/link fault
        # state — versioned by network.state_epoch — plus coordinates.
        # With both counters unchanged since the last window, last
        # window's answers (including the "escalate" Nones a dense fault
        # schedule produces) are still exact, so barriers that did not
        # actually touch state (repair-monitor ticks, summary/replicate
        # deliveries) cost O(1) lookups instead of a full re-derivation
        # per group.  Live coordinate gossip is the one input with no
        # version counter, so coordinate-routed stores with drifting
        # coords opt out.
        self._cacheable = ((store.selection == "oracle"
                            or not hasattr(store._coords, "planar_coords"))
                           and store.strategy.supports_bulk)
        self._info_cache: dict[tuple[int, str], _GroupInfo | None] = {}
        # Unit-level route cache: every member key of a placement unit
        # shares the unit's targets, per-leg delays and positions, so a
        # catalog that folds many keys into one group derives the
        # routing work once per (client, unit) instead of once per
        # (client, key).  Same validity stamp as the info cache.
        self._route_cache: dict[tuple[int, str], tuple | None] = {}
        self._cache_stamp: tuple[int, int] | None = None
        store.enable_fold_buffering()
        store.sim.attach_data_plane(self)

    def stop(self) -> None:
        """Stop generating arrivals, flush folds, detach."""
        self.source.stop()
        if self._attached:
            self.sim.detach_data_plane(self)
            self._attached = False
        self.store.flush_pending_accesses()

    def flush(self) -> None:
        """Apply deferred summary folds (called by the event loop when a
        ``run_until`` horizon is reached, so post-run summary inspection
        needs no manual step)."""
        self.store.flush_pending_accesses()

    # ------------------------------------------------------------------
    def advance(self, bound: float) -> None:
        """Process every arrival with ``time <= bound``.

        Called by the simulator with the next barrier time; between
        barriers no classification-relevant state changes, which is
        what makes bulk delivery exact.
        """
        batch = self.source.generate_until(bound)
        if batch.size == 0:
            return
        registry = obs.get_registry()
        with registry.phase("sim.batched.advance"):
            if self._escalate_all:
                self._escalate_batch(batch)
            elif self._queue_mode:
                self._process_queued(batch, float(bound))
            else:
                self._process(batch, float(bound))

    def _escalate_batch(self, batch: ArrivalBatch) -> None:
        """Exact mode: replay every arrival through the per-event path.

        Used when routing or admission is state-dependent in ways no
        frozen-window argument covers: pending-aware selection
        strategies (every issued read changes the next ranking) and
        capacity-bounded queues (admission depends on live depth).
        Byte-identical to the per-event oracle — correct, not fast.
        """
        n = batch.size
        self.operations_issued += n
        store = self.store
        sim = self.sim
        keys = self.source.keys
        t = batch.times
        clients = batch.clients
        key_idx = batch.key_idx
        is_write = batch.is_write
        for i in range(n):
            client = store.clients[int(clients[i])]
            if is_write[i]:
                sim.schedule_at(float(t[i]), client.write, keys[key_idx[i]])
            else:
                sim.schedule_at(float(t[i]), client.read, keys[key_idx[i]],
                                inert=True)

    # ------------------------------------------------------------------
    def _process(self, batch: ArrivalBatch, bound: float) -> None:
        store = self.store
        sim = self.sim
        net = store.network
        keys = self.source.keys
        nkeys = len(keys)
        n = batch.size
        self.operations_issued += n
        t = batch.times
        clients = batch.clients
        key_idx = batch.key_idx
        is_write = batch.is_write
        timeout = store.read_timeout_ms

        # Writes escalate; so does every read issued at or after the
        # window's first write — its staleness bound and reply versions
        # race the write chain and must be read live, in heap order.
        # Reads issued before the first write are untouched: a write's
        # earliest effect (its request delivery) lands strictly after
        # its issue time, which caps the window cutoff below.
        escalate = np.array(is_write, dtype=bool, copy=True)
        cutoff = bound
        if is_write.any():
            first_write = float(t[is_write].min())
            cutoff = min(bound, first_write)
            escalate |= t >= first_write

        # ---- group accesses by (client, key): route and leg delays are
        # constant per pair within the window.
        gid = clients * nkeys + key_idx
        uniq, inverse, counts = np.unique(gid, return_inverse=True,
                                          return_counts=True)
        order = np.argsort(inverse, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(counts)))

        registry = obs.get_registry()
        tracer = obs.get_tracer() if registry.enabled else None
        log = store.log
        planar = store.planar_coords()
        req_senders: list[np.ndarray] = []
        req_sizes: list[np.ndarray] = []
        rep_senders: list[np.ndarray] = []
        rep_sizes: list[np.ndarray] = []
        deliver_recipients: list[np.ndarray] = []
        deliver_sizes: list[np.ndarray] = []
        deliver_delays: list[np.ndarray] = []
        served = 0
        delay_blocks: list[np.ndarray] = []

        for g, gval in enumerate(uniq.tolist()):
            idx = order[offsets[g]:offsets[g + 1]]
            ridx = idx[~escalate[idx]]
            if ridx.size == 0:
                continue
            info = self._group_info(int(gval) // nkeys, keys[gval % nkeys])
            if info is None:
                escalate[ridx] = True
                continue
            tg = t[ridx]
            q = len(info.targets)
            # Left-associated float sums, exactly as the event chain
            # computes them: arrival = t + d1, completion = (t+d1) + d2.
            arrivals = tg[:, None] + info.d1[None, :]
            completions = arrivals + info.d2[None, :]
            comp = completions.max(axis=1)
            a_sel = comp < cutoff
            if timeout is not None:
                # A completion at or past the timeout means the timeout
                # event (scheduled at issue, hence lower seq) fires
                # first — the retry machinery must run for real.
                a_sel &= comp < tg + timeout
            b_ridx = ridx[~a_sel]
            if b_ridx.size:
                # Hybrid: bulk request-send accounting, real (inert)
                # deliveries + timeout via the client hook.
                req_senders.append(np.full(q * b_ridx.size, info.client))
                req_sizes.append(np.full(q * b_ridx.size, REQUEST_BYTES))
                client = store.clients[info.client]
                leg_delays = info.d1.tolist()
                for issued_at in t[b_ridx].tolist():
                    client.materialize_read(info.key, issued_at,
                                            info.targets, leg_delays)
            if not a_sel.any():
                continue
            ta = tg[a_sel]
            arr = arrivals[a_sel]
            cmp_legs = completions[a_sel]
            comp_a = comp[a_sel]
            delays = comp_a - ta
            m = ta.size
            served += m
            delay_blocks.append(delays)

            # Freshest server: replies arrive in per-leg completion
            # order (stable on leg index); the oracle keeps the first
            # maximum-version reply.
            if q == 1:
                servers_a = itertools.repeat(info.targets[0], m)
            else:
                rank = np.argsort(cmp_legs, axis=1, kind="stable")
                versions_ranked = info.versions[rank]
                first_max = versions_ranked.argmax(axis=1)
                legs = rank[np.arange(m), first_max]
                servers_a = np.asarray(info.targets)[legs].tolist()
            version = info.vmax
            is_stale = info.vmax < info.latest
            coords_row = planar[info.client]
            client_ids = np.broadcast_to(info.client, (m,))
            req_bytes = np.broadcast_to(REQUEST_BYTES, (m,))
            rep_bytes = np.broadcast_to(info.read_size, (m,))
            weights = np.broadcast_to(float(info.read_size), (m,))
            coords_block = np.broadcast_to(coords_row, (m, coords_row.size))
            fold_buffer = info.unit.fold_buffer
            for j, server in enumerate(info.targets):
                arr_j = arr[:, j]
                # Deferred summary fold, stamped with the request
                # arrival time (when the event path would fold it).
                fold_buffer.append((arr_j, info.positions[j],
                                    coords_block, weights, "read"))
                # request leg: client -> server
                req_senders.append(client_ids)
                req_sizes.append(req_bytes)
                deliver_recipients.append(np.broadcast_to(server, (m,)))
                deliver_sizes.append(req_bytes)
                deliver_delays.append(arr_j - ta)
                # reply leg: server -> client
                rep_senders.append(np.broadcast_to(server, (m,)))
                rep_sizes.append(rep_bytes)
                deliver_recipients.append(client_ids)
                deliver_sizes.append(rep_bytes)
                deliver_delays.append(cmp_legs[:, j] - arr_j)

            # Access log: within a group completion times are monotone
            # in issue time, so appends stay sorted; across groups the
            # log re-sorts lazily.
            key = info.key
            client_id = info.client
            rows = zip(comp_a.tolist(), delays.tolist(), servers_a)
            if tracer is not None:
                for when, dly, server in rows:
                    tracer.record(obs.ACCESS_SERVED, time=when, op="read",
                                  client=client_id, server=server, key=key,
                                  delay_ms=dly)
                    log.append(AccessRecord(
                        time=when, client=client_id, server=server,
                        key=key, delay_ms=dly, kind="read",
                        version=version, stale=is_stale))
            else:
                for when, dly, server in rows:
                    log.append(AccessRecord(
                        time=when, client=client_id, server=server,
                        key=key, delay_ms=dly, kind="read",
                        version=version, stale=is_stale))

        # ---- bulk traffic accounting (integer-valued, hence exact).
        if req_senders:
            net.account_bulk_sends("read-req", np.concatenate(req_senders),
                                   np.concatenate(req_sizes))
        if rep_senders:
            net.account_bulk_sends("read-rep", np.concatenate(rep_senders),
                                   np.concatenate(rep_sizes))
        if deliver_recipients:
            net.account_bulk_deliveries(np.concatenate(deliver_recipients),
                                        np.concatenate(deliver_sizes),
                                        np.concatenate(deliver_delays))
        if served:
            if registry.enabled:
                registry.counter("accesses.served").inc(served)
                registry.counter("store.reads").inc(served)
                registry.histogram("access.delay_ms").observe_many(
                    np.concatenate(delay_blocks))

        # ---- escalated accesses replay through the per-event path.
        # Writes are barriers (their chains mutate versions/placement);
        # escalated reads stay inert.
        cidx = np.flatnonzero(escalate)
        for i in cidx.tolist():
            client = store.clients[int(clients[i])]
            if is_write[i]:
                sim.schedule_at(float(t[i]), client.write, keys[key_idx[i]])
            else:
                sim.schedule_at(float(t[i]), client.read, keys[key_idx[i]],
                                inert=True)

    # ------------------------------------------------------------------
    def _process_queued(self, batch: ArrivalBatch, bound: float) -> None:
        """Queued-mode window: vectorized per-server backlog recursion.

        The per-event oracle admits each read leg into its server's
        FIFO at delivery time (Lindley: ``finish = max(arrival,
        busy_until) + service``).  This method reproduces that in bulk:
        all provably-clean legs of the window are sorted per server by
        arrival time and pushed through the same recursion in closed
        form (``f = S + cummax(max(a - S_prev, busy_until))`` with
        ``S`` the running service sum), sharing ``ServerQueue.
        busy_until`` with the per-event path so escalations and bulk
        windows drain one backlog.

        Classification differs from :meth:`_process` in one way: a read
        whose *queued* completion crosses the cutoff or the timeout
        horizon cannot be known clean until the recursion has run, so
        such reads are **demoted** post-hoc — the recursion is re-run
        without their legs (waits only shrink, so no new demotions
        arise), and they re-enter through ``materialize_read`` exactly
        like a hybrid item, admitting per-event against the committed
        backlog.  Every demotion or materialization is one admission
        processed out of the oracle's FIFO order; each such admission
        perturbs any single access's wait by at most one service time,
        which gives the documented, test-asserted error bound: with
        deterministic service ``s``, per-access delay differs from the
        oracle by at most ``(per-event admissions in the run) * s``
        (zero when every read is bulk-served).  Stochastic service adds
        draw-order skew: bulk draws consume the ``"service"`` stream in
        global arrival order, the oracle in heap order — identical
        sample *sets* per window only when nothing demotes.
        """
        store = self.store
        sim = self.sim
        net = store.network
        queueing = store.queueing
        keys = self.source.keys
        nkeys = len(keys)
        n = batch.size
        self.operations_issued += n
        t = batch.times
        clients = batch.clients
        key_idx = batch.key_idx
        is_write = batch.is_write
        timeout = store.read_timeout_ms

        escalate = np.array(is_write, dtype=bool, copy=True)
        cutoff = bound
        if is_write.any():
            first_write = float(t[is_write].min())
            cutoff = min(bound, first_write)
            escalate |= t >= first_write

        gid = clients * nkeys + key_idx
        uniq, inverse, counts = np.unique(gid, return_inverse=True,
                                          return_counts=True)
        order = np.argsort(inverse, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(counts)))

        registry = obs.get_registry()
        tracer = obs.get_tracer() if registry.enabled else None
        log = store.log
        planar = store.planar_coords()
        req_senders: list[np.ndarray] = []
        req_sizes: list[np.ndarray] = []
        rep_senders: list[np.ndarray] = []
        rep_sizes: list[np.ndarray] = []
        deliver_recipients: list[np.ndarray] = []
        deliver_sizes: list[np.ndarray] = []
        deliver_delays: list[np.ndarray] = []
        served = 0
        delay_blocks: list[np.ndarray] = []

        # ---- stage 1: classify.  Optimistically-late reads (past the
        # cutoff or timeout horizon even with zero queue wait) cannot
        # be bulk-served regardless of backlog — they materialize like
        # hybrid items up front.  The rest contribute legs.
        groups: list[tuple] = []      # (info, candidate ridx, leg offset)
        materialize: list[tuple] = []  # (info, issue-time array)
        leg_arr_parts: list[np.ndarray] = []
        leg_srv_parts: list[np.ndarray] = []
        leg_total = 0
        for g, gval in enumerate(uniq.tolist()):
            idx = order[offsets[g]:offsets[g + 1]]
            ridx = idx[~escalate[idx]]
            if ridx.size == 0:
                continue
            info = self._group_info(int(gval) // nkeys, keys[gval % nkeys])
            if info is None:
                escalate[ridx] = True
                continue
            tg = t[ridx]
            opt = tg + float((info.d1 + info.d2).max())
            sel = opt < cutoff
            if timeout is not None:
                sel &= opt < tg + timeout
            if not sel.all():
                materialize.append((info, tg[~sel]))
                ridx = ridx[sel]
                tg = tg[sel]
            if ridx.size == 0:
                continue
            arrivals = tg[:, None] + info.d1[None, :]
            groups.append((info, ridx, leg_total))
            leg_arr_parts.append(arrivals.ravel())
            leg_srv_parts.append(np.tile(np.asarray(info.targets), tg.size))
            leg_total += arrivals.size

        # ---- stage 2: service draws + backlog recursion + demotion.
        group_demoted: list[np.ndarray] = []
        finishes = np.empty(leg_total)
        if leg_total:
            leg_arr = np.concatenate(leg_arr_parts)
            leg_srv = np.concatenate(leg_srv_parts)
            # Draws consumed in global arrival order — the order the
            # oracle's heap would deliver the requests.
            draw_order = np.argsort(leg_arr, kind="stable")
            services = np.empty(leg_total)
            services[draw_order] = queueing.sample_service_block(
                sim, leg_total)
            rec = np.lexsort((leg_arr, leg_srv))
            self._run_backlog(leg_srv, leg_arr, services, rec, finishes,
                              commit=False)
            retained = np.ones(leg_total, dtype=bool)
            demotions = 0
            for info, ridx, start in groups:
                q = len(info.targets)
                m = ridx.size
                block = finishes[start:start + m * q].reshape(m, q)
                comp = (block + info.d2[None, :]).max(axis=1)
                dem = comp >= cutoff
                if timeout is not None:
                    dem |= comp >= t[ridx] + timeout
                group_demoted.append(dem)
                if dem.any():
                    demotions += int(dem.sum())
                    retained[start:start + m * q] = np.repeat(~dem, q)
            self.queue_demotions += demotions
            # Commit pass: excluding demoted legs only shrinks waits,
            # so the retained set is final after one re-run.
            self._run_backlog(leg_srv, leg_arr, services,
                              rec[retained[rec]], finishes, commit=True)

        # ---- stage 3: commit retained reads; demote the rest.
        for (info, ridx, start), dem in zip(groups, group_demoted):
            q = len(info.targets)
            tg_all = t[ridx]
            if dem.any():
                nd = int(dem.sum())
                req_senders.append(np.full(q * nd, info.client))
                req_sizes.append(np.full(q * nd, REQUEST_BYTES))
                client = store.clients[info.client]
                leg_delays = info.d1.tolist()
                for issued_at in tg_all[dem].tolist():
                    client.materialize_read(info.key, issued_at,
                                            info.targets, leg_delays)
            keep = ~dem
            if not keep.any():
                continue
            tg = tg_all[keep]
            m = tg.size
            flat = np.flatnonzero(np.repeat(keep, q)) + start
            f_block = finishes[flat].reshape(m, q)
            arr_block = leg_arr[flat].reshape(m, q)
            reply_block = f_block + info.d2[None, :]
            comp = reply_block.max(axis=1)
            delays = comp - tg
            served += m
            delay_blocks.append(delays)

            if q == 1:
                servers_a = itertools.repeat(info.targets[0], m)
            else:
                rank = np.argsort(reply_block, axis=1, kind="stable")
                versions_ranked = info.versions[rank]
                first_max = versions_ranked.argmax(axis=1)
                legs = rank[np.arange(m), first_max]
                servers_a = np.asarray(info.targets)[legs].tolist()
            version = info.vmax
            is_stale = info.vmax < info.latest
            coords_row = planar[info.client]
            client_ids = np.broadcast_to(info.client, (m,))
            req_bytes = np.broadcast_to(REQUEST_BYTES, (m,))
            rep_bytes = np.broadcast_to(info.read_size, (m,))
            weights = np.broadcast_to(float(info.read_size), (m,))
            coords_block = np.broadcast_to(coords_row, (m, coords_row.size))
            fold_buffer = info.unit.fold_buffer
            for j, server in enumerate(info.targets):
                arr_j = arr_block[:, j]
                fold_buffer.append((arr_j, info.positions[j],
                                    coords_block, weights, "read"))
                req_senders.append(client_ids)
                req_sizes.append(req_bytes)
                deliver_recipients.append(np.broadcast_to(server, (m,)))
                deliver_sizes.append(req_bytes)
                deliver_delays.append(arr_j - tg)
                # The reply departs at service completion; its network
                # transit (the delivery delay) is still just d2.
                rep_senders.append(np.broadcast_to(server, (m,)))
                rep_sizes.append(rep_bytes)
                deliver_recipients.append(client_ids)
                deliver_sizes.append(rep_bytes)
                deliver_delays.append(reply_block[:, j] - f_block[:, j])

            key = info.key
            client_id = info.client
            rows = zip(comp.tolist(), delays.tolist(), servers_a)
            if tracer is not None:
                for when, dly, server in rows:
                    tracer.record(obs.ACCESS_SERVED, time=when, op="read",
                                  client=client_id, server=server, key=key,
                                  delay_ms=dly)
                    log.append(AccessRecord(
                        time=when, client=client_id, server=server,
                        key=key, delay_ms=dly, kind="read",
                        version=version, stale=is_stale))
            else:
                for when, dly, server in rows:
                    log.append(AccessRecord(
                        time=when, client=client_id, server=server,
                        key=key, delay_ms=dly, kind="read",
                        version=version, stale=is_stale))

        # ---- optimistically-late reads: hybrid handling.
        for info, times in materialize:
            q = len(info.targets)
            req_senders.append(np.full(q * times.size, info.client))
            req_sizes.append(np.full(q * times.size, REQUEST_BYTES))
            client = store.clients[info.client]
            leg_delays = info.d1.tolist()
            for issued_at in times.tolist():
                client.materialize_read(info.key, issued_at, info.targets,
                                        leg_delays)

        # ---- bulk traffic accounting.
        if req_senders:
            net.account_bulk_sends("read-req", np.concatenate(req_senders),
                                   np.concatenate(req_sizes))
        if rep_senders:
            net.account_bulk_sends("read-rep", np.concatenate(rep_senders),
                                   np.concatenate(rep_sizes))
        if deliver_recipients:
            net.account_bulk_deliveries(np.concatenate(deliver_recipients),
                                        np.concatenate(deliver_sizes),
                                        np.concatenate(deliver_delays))
        if served:
            if registry.enabled:
                registry.counter("accesses.served").inc(served)
                registry.counter("store.reads").inc(served)
                registry.histogram("access.delay_ms").observe_many(
                    np.concatenate(delay_blocks))

        # ---- escalated accesses replay through the per-event path.
        cidx = np.flatnonzero(escalate)
        for i in cidx.tolist():
            client = store.clients[int(clients[i])]
            if is_write[i]:
                sim.schedule_at(float(t[i]), client.write, keys[key_idx[i]])
            else:
                sim.schedule_at(float(t[i]), client.read, keys[key_idx[i]],
                                inert=True)

    def _run_backlog(self, leg_srv: np.ndarray, leg_arr: np.ndarray,
                     services: np.ndarray, rec: np.ndarray,
                     finishes: np.ndarray, commit: bool) -> None:
        """Per-server Lindley recursion over the legs selected by ``rec``
        (a view sorted by server, then arrival time).

        Writes each leg's service-completion time into ``finishes``.
        With ``commit``, also advances each server's ``busy_until`` to
        its segment's final completion and books the offered/accepted
        counters — the committed backlog every later per-event
        admission (escalated, demoted or next-window) queues behind.
        """
        if rec.size == 0:
            return
        store = self.store
        srv_sorted = leg_srv[rec]
        splits = np.flatnonzero(np.diff(srv_sorted)) + 1
        starts = np.concatenate(([0], splits))
        ends = np.concatenate((splits, [srv_sorted.size]))
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            sel = rec[lo:hi]
            queue = store.servers[int(srv_sorted[lo])].queue
            s_seg = services[sel]
            a_seg = leg_arr[sel]
            # f_i = max(a_i, f_{i-1}) + s_i in closed form: with running
            # sums S_i and c_i = a_i - S_{i-1}, the start-slack cummax
            # gives f = S + cummax(max(c, busy_until)).
            total = np.cumsum(s_seg)
            slack = a_seg - (total - s_seg)
            f = total + np.maximum.accumulate(
                np.maximum(slack, queue.busy_until))
            finishes[sel] = f
            if commit:
                queue.busy_until = float(f[-1])
                m = hi - lo
                queue.offered += m
                queue.accepted += m
                self.bulk_queue_admissions += m

    # ------------------------------------------------------------------
    def _group_info(self, client: int, key: str) -> _GroupInfo | None:
        """Routing and leg data for one (client, key), or ``None``.

        ``None`` means the access cannot be proven clean — it escalates
        to the per-event path, which then reproduces forwarding, drops,
        loss draws and quorum errors byte-for-byte.
        """
        if not self._cacheable:
            return self._derive_group_info(client, key)
        stamp = (self.store._state_version, self.store.network.state_epoch)
        if stamp != self._cache_stamp:
            self._info_cache.clear()
            self._route_cache.clear()
            self._cache_stamp = stamp
        cached = self._info_cache.get((client, key), self._MISS)
        if cached is not self._MISS:
            return cached
        info = self._derive_group_info(client, key)
        self._info_cache[(client, key)] = info
        return info

    def _derive_group_info(self, client: int, key: str) -> _GroupInfo | None:
        store = self.store
        try:
            unit = store._unit_of_key(key)
        except KeyError:
            return None
        obj = unit.members.get(key)
        if obj is None:
            return None  # a group key is not itself readable
        route = self._unit_route(client, unit)
        if route is None:
            return None
        targets, d1, d2_base, rtt_back, positions = route
        versions = np.empty(len(targets), dtype=int)
        for j, server in enumerate(targets):
            replicas = store.servers[server].replicas
            if key not in replicas:
                return None
            versions[j] = replicas[key]
        bandwidth = store.network.bandwidth
        if bandwidth is not None:
            # The reply leg's serialization time is the only per-key
            # part of the delays (it scales with the member's payload).
            d2 = d2_base + np.array([
                bandwidth.transfer_ms(rtt, obj.read_size_bytes)
                for rtt in rtt_back])
        else:
            d2 = d2_base
        return _GroupInfo(
            client=client, key=key, targets=targets, d1=d1, d2=d2,
            versions=versions, vmax=int(versions.max()),
            latest=unit.latest[key],
            read_size=obj.read_size_bytes,
            positions=positions, unit=unit)

    def _unit_route(self, client: int, unit) -> tuple | None:
        """The unit-level half of :meth:`_derive_group_info`, cached.

        Returns ``(targets, d1, d2_base, rtt_back, positions)`` — the
        quorum route, per-leg request delays (bandwidth included), reply
        propagation delays *without* the per-key serialization term, the
        reply-leg RTTs that term needs, and candidate positions — or
        ``None`` when any leg cannot be proven clean.  Everything here
        depends only on the placement unit, so member keys of one group
        share a single derivation per (client, unit) and stamp.
        """
        if self._cacheable:
            cached = self._route_cache.get((client, unit.unit_key),
                                           self._MISS)
            if cached is not self._MISS:
                return cached
        route = self._derive_unit_route(client, unit)
        if self._cacheable:
            self._route_cache[(client, unit.unit_key)] = route
        return route

    def _derive_unit_route(self, client: int, unit) -> tuple | None:
        store = self.store
        net = store.network
        try:
            targets = store.route_read(client, unit.unit_key)
        except (QuorumError, KeyError):
            return None
        if not net.is_up(client):
            return None
        d1 = np.empty(len(targets))
        d2 = np.empty(len(targets))
        rtt_back = np.empty(len(targets))
        for j, server in enumerate(targets):
            if (not net.is_up(server)
                    or not net.link_reliable(client, server)
                    or not net.link_reliable(server, client)):
                return None
            delay1 = net.matrix.one_way(client, server)
            if net.bandwidth is not None:
                delay1 += net.bandwidth.transfer_ms(
                    net.matrix.latency(client, server), REQUEST_BYTES)
            d1[j] = delay1
            d2[j] = net.matrix.one_way(server, client)
            rtt_back[j] = net.matrix.latency(server, client)
        return (tuple(targets), d1, d2, rtt_back,
                tuple(store._position_of[s] for s in targets))


class BatchedAccessWorkload:
    """Drop-in batched replacement for ``AccessWorkload``.

    Same constructor signature and RNG stream, so a run driven by this
    class produces the same accesses — and, via the engine, the same
    placement decisions, log and metric totals — as the per-event
    workload, at a fraction of the event count.
    """

    def __init__(self, store: ReplicatedStore, population: ClientPopulation,
                 keys: Sequence[str], rate_per_second: float = 100.0,
                 write_fraction: float = 0.0,
                 pattern: TemporalPattern | None = None,
                 popularity: ZipfObjectPopularity | None = None) -> None:
        self.store = store
        self.population = population
        self.keys = tuple(keys)
        for client in population.clients:
            if client not in store.clients:
                store.add_client(client)
        self.source = WorkloadArrivals(
            store.sim.rng("workload"), population, self.keys,
            rate_per_second=rate_per_second, write_fraction=write_fraction,
            pattern=pattern, popularity=popularity,
            start_time=store.sim.now)
        self.engine = BatchedAccessEngine(store, self.source)

    @property
    def operations_issued(self) -> int:
        return self.engine.operations_issued

    def stop(self) -> None:
        """Stop issuing operations."""
        self.engine.stop()
