"""The replicated store: servers, clients and the placement control loop.

See :mod:`repro.store` for the overview.  All latency behaviour comes
from the simulator's message fabric; this module adds the storage
protocol on top:

========================  ==========================================
message kind              meaning
========================  ==========================================
``read-req``              client -> server: read an object
``read-rep``              server -> client: object payload
``write-req``             client -> server: update an object
``write-ack``             server -> client: write accepted
``replicate``             server -> server: full replica transfer
                          (update propagation, migration or repair)
``summary``               server -> coordinator: micro-cluster summary
========================  ==========================================

Placement operates on **placement units**: a unit is either a single
object or an *object group* — the paper's Section II-A "virtual object
that represents all the objects of the group".  Every member of a unit
shares one replica set, one access summary, one controller and one
migration decision; accesses to any member inform the shared summary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.controller import (
    ControllerConfig,
    EpochReport,
    ReplicationController,
)
from repro.core.migration import MigrationCostModel, MigrationPolicy, RetryPolicy
from repro.net.bandwidth import BandwidthModel
from repro.net.domains import FailureDomains
from repro.sim.node import Message, Network, Node
from repro.sim.process import PeriodicProcess
from repro.sim.simulator import Simulator
from repro.store.consistency import ConsistencyConfig, QuorumError
from repro.store.objects import AccessLog, AccessRecord, DataObject
from repro.store.queueing import QueueingConfig, ServerQueue
from repro.store.selection import SelectionStrategy, make_strategy

__all__ = ["StorageServer", "StorageClient", "ReplicatedStore"]

#: Bytes of a read/write request (key + client coordinates + header).
REQUEST_BYTES = 256


class StorageServer(Node):
    """A data-center server that can hold replicas of objects."""

    def __init__(self, store: "ReplicatedStore", node_id: int) -> None:
        super().__init__(store.network, node_id)
        self.store = store
        #: object key -> stored version.
        self.replicas: dict[str, int] = {}
        #: FIFO service queue (inert unless the store configures
        #: queueing; reads then wait behind earlier admitted work).
        self.queue = ServerQueue()

    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        handler = {
            "read-req": self._on_read,
            "write-req": self._on_write,
            "replicate": self._on_replicate,
            "summary": self._on_summary,
        }.get(message.kind)
        if handler is None:
            raise ValueError(f"server got unexpected message {message.kind!r}")
        handler(message)

    def _forward(self, message: Message) -> None:
        """Replica gone: forward the request to a current site.

        The extra server-to-server hop costs real latency, which is the
        honest price of catching a replica mid-retirement.
        """
        key = message.payload["key"]
        try:
            sites = self.store.installed_sites(key)
        except KeyError:
            return  # object deleted while the request was in flight
        if not sites:
            return  # object fully retired; the request is lost
        target = self.store._rank_sites(self.node_id, sites)[0]
        self.send(target, message.kind, payload=message.payload,
                  size_bytes=message.size_bytes)

    def _on_read(self, message: Message) -> None:
        key = message.payload["key"]
        if key not in self.replicas:
            self._forward(message)
            return
        queueing = self.store.queueing
        if queueing is None or not queueing.active:
            # The certified fast path: identical to the pre-queueing
            # store, byte for byte (no counters, no RNG, no events).
            self._serve_read_now(message)
            return
        service = queueing.sample_service(self.sim)
        finish = self.queue.admit(self.sim.now, service,
                                  queueing.queue_capacity)
        if finish is None:
            # Queue full: the request is dropped.  The client sees it
            # exactly like a lost message — its read timeout (if
            # configured) fires and retries another replica.
            self.store.queue_rejections += 1
            registry = obs.get_registry()
            if registry.enabled:
                registry.counter("store.queue_rejections").inc()
            return
        if finish <= self.sim.now:
            self._serve_read_now(message)
            return
        # The server snapshots the object and accounts the access at
        # admission; the reply departs when the service completes.
        version = self.replicas[key]
        obj = self.store.object(key)
        self.store._record_server_access(self.node_id, key,
                                         message.payload["coords"],
                                         obj.read_size_bytes, kind="read")
        self.sim.schedule_at(finish, self._send_read_reply, message,
                             version, obj.read_size_bytes, inert=True)

    def _serve_read_now(self, message: Message) -> None:
        key = message.payload["key"]
        if key not in self.replicas:
            self._forward(message)
            return
        version = self.replicas[key]
        obj = self.store.object(key)
        self.store._record_server_access(self.node_id, key,
                                         message.payload["coords"],
                                         obj.read_size_bytes, kind="read")
        self.send(message.payload["client"], "read-rep",
                  payload={"key": key, "version": version,
                           "request_id": message.payload["request_id"]},
                  size_bytes=obj.read_size_bytes)

    def _send_read_reply(self, message: Message, version: int,
                         size_bytes: int) -> None:
        self.send(message.payload["client"], "read-rep",
                  payload={"key": message.payload["key"], "version": version,
                           "request_id": message.payload["request_id"]},
                  size_bytes=size_bytes)

    def _on_write(self, message: Message) -> None:
        key = message.payload["key"]
        if key not in self.replicas:
            self._forward(message)
            return
        version = self.store._next_version(key)
        self.store._state_version += 1
        self.replicas[key] = max(self.replicas[key], version)
        self.store._record_server_access(self.node_id, key,
                                         message.payload["coords"],
                                         REQUEST_BYTES, kind="write")
        self.send(message.payload["client"], "write-ack",
                  payload={"key": key, "version": version,
                           "request_id": message.payload["request_id"]},
                  size_bytes=REQUEST_BYTES)
        config = self.store.consistency
        if config.propagate_updates:
            self.sim.schedule(config.propagation_delay_ms,
                              self._propagate, key, version)

    def _propagate(self, key: str, version: int) -> None:
        obj = self.store.object(key)
        for peer in self.store.installed_sites(key):
            if peer != self.node_id:
                self.send(peer, "replicate",
                          payload={"versions": {key: version},
                                   "unit": self.store._unit_key_of(key),
                                   "reason": "update"},
                          size_bytes=obj.size_bytes)

    def _on_replicate(self, message: Message) -> None:
        """Install (or refresh) replicas of one placement unit.

        ``versions`` maps every transferred member key to its version;
        a migration or repair moves the whole unit in one transfer.
        """
        versions: Mapping[str, int] = message.payload["versions"]
        self.store._state_version += 1
        for key, version in versions.items():
            self.replicas[key] = max(self.replicas.get(key, -1), version)
        reason = message.payload.get("reason")
        unit_key = message.payload["unit"]
        if unit_key not in self.store._units:
            # The unit was deleted while the transfer was in flight;
            # discard the stray replica data.
            for key in versions:
                self.replicas.pop(key, None)
            return
        if reason == "migration":
            self.store._migration_transfer_done(unit_key, self.node_id)
        elif reason == "repair":
            self.store._repair_transfer_done(unit_key, self.node_id)

    def _on_summary(self, message: Message) -> None:
        # Summaries terminate at the coordinator; the controller already
        # consumed their content synchronously — this message exists so
        # the control-plane traffic is charged to the network.  Its
        # arrival doubles as the delivery acknowledgement the retry
        # machinery waits for.
        self.store._summary_received(message.payload["unit"], message.sender,
                                     message.payload.get("shipment"))

    # ------------------------------------------------------------------
    def install(self, key: str, version: int) -> None:
        """Place a replica directly (initial placement, no transfer)."""
        self.store._state_version += 1
        self.replicas[key] = version

    def drop(self, key: str) -> None:
        """Discard a replica."""
        self.store._state_version += 1
        self.replicas.pop(key, None)

    def holds_unit(self, unit: "_PlacementUnit") -> bool:
        """Whether this server holds every member of ``unit``."""
        return all(key in self.replicas for key in unit.members)


@dataclass
class _PendingRead:
    key: str
    issued_at: float
    expected: int
    #: Latest committed version when the read was issued; a read is
    #: *stale* if it returns anything older (reads racing with writes
    #: that commit mid-flight are not penalised).
    latest_at_issue: int
    versions: list[int] = field(default_factory=list)
    servers: list[int] = field(default_factory=list)
    attempts: int = 1
    tried: set[int] = field(default_factory=set)
    timeout_event: object = None
    #: Server -> issue time of the leg still awaiting a reply; feeds
    #: the selection strategy's pending counts and latency trackers.
    outstanding: dict[int, float] = field(default_factory=dict)


class StorageClient(Node):
    """A user client issuing reads and writes against the store."""

    def __init__(self, store: "ReplicatedStore", node_id: int) -> None:
        super().__init__(store.network, node_id)
        self.store = store
        self._request_ids = itertools.count()
        self._pending_reads: dict[int, _PendingRead] = {}
        self._pending_writes: dict[int, tuple[str, float]] = {}

    # ------------------------------------------------------------------
    # Issuing operations
    # ------------------------------------------------------------------
    def read(self, key: str) -> None:
        """Read ``key`` from the closest replica(s) (quorum-aware).

        With the store's ``read_timeout_ms`` configured, an unanswered
        read is retried against the next-closest untried replica — the
        paper's "users may have time to access a second or more
        replicas if they cannot access the first" scenario.  The total
        logged delay includes the time lost waiting on dead replicas.
        """
        targets = self.store.route_read(self.node_id, key)
        request_id = next(self._request_ids)
        pending = _PendingRead(
            key=key, issued_at=self.sim.now, expected=len(targets),
            latest_at_issue=self.store.latest_version(key))
        self._pending_reads[request_id] = pending
        self._issue_read(request_id, pending, targets)

    def _issue_read(self, request_id: int, pending: _PendingRead,
                    targets: Sequence[int]) -> None:
        coords = self.store.planar_coords_of(self.node_id)
        pending.tried.update(targets)
        strategy = self.store.strategy
        for server in targets:
            pending.outstanding[server] = self.sim.now
            strategy.note_issued(self.node_id, server)
            self.send(server, "read-req",
                      payload={"key": pending.key, "request_id": request_id,
                               "coords": coords, "client": self.node_id},
                      size_bytes=REQUEST_BYTES)
        if self.store.read_timeout_ms is not None:
            # Inert: a retry only re-runs the (inert) read machinery or
            # logs a failure — both land in order-tolerant sinks.
            pending.timeout_event = self.sim.schedule(
                self.store.read_timeout_ms, self._on_read_timeout,
                request_id, inert=True)

    def materialize_read(self, key: str, issued_at: float,
                         targets: Sequence[int],
                         delays: Sequence[float]) -> int:
        """Batched-engine hook: register an already-sent read.

        The engine bulk-accounted the request legs as cleanly sent at
        ``issued_at``; this schedules their deliveries (after the given
        per-leg one-way ``delays``) and the retry timeout exactly as
        :meth:`read` would have, so replies, retries and timeouts run
        through the untouched per-event machinery.
        """
        request_id = next(self._request_ids)
        pending = _PendingRead(
            key=key, issued_at=issued_at, expected=len(targets),
            latest_at_issue=self.store.latest_version(key))
        self._pending_reads[request_id] = pending
        pending.tried.update(targets)
        coords = self.store.planar_coords_of(self.node_id)
        strategy = self.store.strategy
        for server, delay in zip(targets, delays):
            pending.outstanding[server] = issued_at
            strategy.note_issued(self.node_id, server)
            self.sim.schedule_at(
                issued_at + delay, self.network._deliver, Message(
                    sender=self.node_id, recipient=server, kind="read-req",
                    payload={"key": key, "request_id": request_id,
                             "coords": coords, "client": self.node_id},
                    size_bytes=REQUEST_BYTES, sent_at=issued_at),
                inert=True)
        if self.store.read_timeout_ms is not None:
            pending.timeout_event = self.sim.schedule_at(
                issued_at + self.store.read_timeout_ms,
                self._on_read_timeout, request_id, inert=True)
        return request_id

    def _on_read_timeout(self, request_id: int) -> None:
        pending = self._pending_reads.get(request_id)
        if pending is None:
            return  # completed in the meantime
        pending.timeout_event = None
        try:
            sites = self.store.installed_sites(pending.key)
        except KeyError:
            sites = ()  # object deleted: the read can only fail now
        untried = [s for s in self.store._rank_sites(self.node_id, sites)
                   if s not in pending.tried]
        missing = pending.expected - len(pending.versions)
        if (pending.attempts >= self.store.max_read_attempts
                or not untried):
            del self._pending_reads[request_id]
            if pending.outstanding:
                self.store.strategy.note_failure(
                    self.node_id, sorted(pending.outstanding))
                pending.outstanding.clear()
            self.store.failed_reads += 1
            registry = obs.get_registry()
            if registry.enabled:
                registry.counter("store.read_timeouts").inc()
            self.store.log.append(AccessRecord(
                time=self.sim.now, client=self.node_id, server=-1,
                key=pending.key, delay_ms=self.sim.now - pending.issued_at,
                kind="read-timeout"))
            return
        pending.attempts += 1
        # Only the missing quorum members are re-requested.
        self._issue_read(request_id, pending, untried[:max(missing, 1)])

    def write(self, key: str) -> None:
        """Update ``key`` at the closest replica."""
        target = self.store.route_write(self.node_id, key)
        request_id = next(self._request_ids)
        self._pending_writes[request_id] = (key, self.sim.now)
        self.send(target, "write-req",
                  payload={"key": key, "request_id": request_id,
                           "coords": self.store.planar_coords_of(self.node_id),
                           "client": self.node_id},
                  size_bytes=REQUEST_BYTES)

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.kind == "read-rep":
            self._on_read_reply(message)
        elif message.kind == "write-ack":
            self._on_write_ack(message)
        else:
            raise ValueError(f"client got unexpected message {message.kind!r}")

    def _on_read_reply(self, message: Message) -> None:
        request_id = message.payload["request_id"]
        pending = self._pending_reads.get(request_id)
        if pending is None:
            return
        leg_issued = pending.outstanding.pop(message.sender, None)
        if leg_issued is not None:
            self.store.strategy.note_reply(
                self.node_id, message.sender, self.sim.now - leg_issued)
        pending.versions.append(message.payload["version"])
        pending.servers.append(message.sender)
        if len(pending.versions) < pending.expected:
            return
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        del self._pending_reads[request_id]
        if pending.outstanding:
            # Quorum satisfied with legs still in flight (a retry raced
            # a slow original); release their pending counts — a late
            # reply finds no pending read and is ignored.
            self.store.strategy.note_failure(
                self.node_id, sorted(pending.outstanding))
            pending.outstanding.clear()
        version = max(pending.versions)
        freshest_server = pending.servers[int(np.argmax(pending.versions))]
        delay = self.sim.now - pending.issued_at
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("accesses.served").inc()
            registry.counter("store.reads").inc()
            registry.histogram("access.delay_ms").observe(delay)
            obs.get_tracer().record(
                obs.ACCESS_SERVED, time=self.sim.now, op="read",
                client=self.node_id, server=freshest_server,
                key=pending.key, delay_ms=delay)
        self.store.log.append(AccessRecord(
            time=self.sim.now, client=self.node_id, server=freshest_server,
            key=pending.key, delay_ms=delay, kind="read", version=version,
            stale=version < pending.latest_at_issue,
        ))

    def _on_write_ack(self, message: Message) -> None:
        request_id = message.payload["request_id"]
        pending = self._pending_writes.pop(request_id, None)
        if pending is None:
            return
        key, issued_at = pending
        delay = self.sim.now - issued_at
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("accesses.served").inc()
            registry.counter("store.writes").inc()
            registry.histogram("access.delay_ms").observe(delay)
            obs.get_tracer().record(
                obs.ACCESS_SERVED, time=self.sim.now, op="write",
                client=self.node_id, server=message.sender,
                key=key, delay_ms=delay)
        self.store.log.append(AccessRecord(
            time=self.sim.now, client=self.node_id, server=message.sender,
            key=key, delay_ms=delay, kind="write",
            version=message.payload["version"],
        ))


@dataclass
class _PendingShipment:
    """Retry state of one in-flight transfer or summary shipment."""

    attempts: int = 1
    size_bytes: int = 0
    timeout_event: object = None
    #: Matches acknowledgements to this shipment (summaries only): a
    #: delayed copy from a superseded epoch must not ack a later one.
    shipment_id: int = 0


@dataclass
class _PlacementUnit:
    """One independently placed replica set: an object or a group."""

    unit_key: str
    members: dict[str, DataObject]
    controller: ReplicationController
    installed: set[int]            # node ids currently serving reads
    target: set[int] | None = None       # node ids of an in-flight migration
    awaiting: set[int] = field(default_factory=set)  # pending transfers
    latest: dict[str, int] = field(default_factory=dict)
    epoch_process: PeriodicProcess | None = None
    epoch_reports: list[EpochReport] = field(default_factory=list)
    #: Per-unit default coordinator (a sharded catalog homes each shard's
    #: units on that shard's coordinator); ``None`` falls back to the
    #: store-wide default (the first candidate).
    home: int | None = None
    #: Retry bookkeeping (only populated when a RetryPolicy is set).
    pending_transfers: dict[int, _PendingShipment] = field(default_factory=dict)
    pending_summaries: dict[int, _PendingShipment] = field(default_factory=dict)
    abandoned: set[int] = field(default_factory=set)
    #: Deferred summary folds (batched engine only): tuples of
    #: ``(time(s), position, coords, weight(s), kind)`` where the first,
    #: third and fourth fields may be scalars (one access, recorded by a
    #: real event) or arrays (a bulk window).  Flushed — stably sorted
    #: by access time, per position and summary stream — before any
    #: summary observation or mutation.
    fold_buffer: list = field(default_factory=list)

    @property
    def total_size_gb(self) -> float:
        return sum(obj.size_gb for obj in self.members.values())

    @property
    def total_size_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self.members.values())

    def current_versions(self, server: StorageServer) -> dict[str, int]:
        return {key: server.replicas.get(key, 0) for key in self.members}


class ReplicatedStore:
    """Catalog, routing and placement control for replicated objects.

    Parameters
    ----------
    sim / matrix:
        Simulator and ground-truth RTTs.
    candidates:
        Node ids usable as data centers; a :class:`StorageServer` is
        created on each.
    coords:
        Planar network coordinates for routing and clustering: a static
        ``(n, d)`` array or any object with a ``planar_coords()`` method
        (e.g. :class:`~repro.sim.gossip.CoordinateGossip`), re-read at
        every routing decision so live coordinates are honoured.
    selection:
        ``"coords"`` routes reads with coordinate predictions (the
        deployable mode); ``"oracle"`` uses true RTTs (the paper's
        closest-replica assumption for its figures).
    consistency:
        Read-quorum / update-propagation configuration.
    bandwidth:
        Optional :class:`~repro.net.bandwidth.BandwidthModel`: payload
        bytes then add serialization time to every delivery (replica
        transfers become slow, reads barely change).
    read_timeout_ms / max_read_attempts:
        Enable client-side read failover: an unanswered read retries
        the next-closest replica, up to the attempt budget.
    auto_repair / repair_period_ms:
        Enable the availability monitor: dead replicas are dropped from
        the read set, recovered durable replicas rejoin, and lost
        redundancy is re-replicated from surviving copies.
    retry_policy:
        Optional :class:`~repro.core.migration.RetryPolicy`.  When set,
        migration transfers and summary shipments are retried on timeout
        with exponential backoff + jitter (drawn from the simulator's
        ``"retry-jitter"`` stream), and a migration whose transfer
        exhausts the budget is rolled back without shedding replicas.
        ``None`` (the default) preserves the fire-and-forget behaviour.
    queueing:
        Optional :class:`~repro.store.queueing.QueueingConfig`: reads
        occupy their server for a sampled service time and wait FIFO
        behind earlier admitted work; with a ``queue_capacity``,
        arrivals beyond it are dropped (counted in
        ``queue_rejections``).  ``None`` — or a config whose service
        time is identically zero with an unbounded queue — keeps the
        certified uncontended path, byte for byte.
    strategy:
        Replica selection policy: ``"nearest"`` (the default, bitwise
        today's behaviour), ``"least-pending"``, ``"c3"``, or any
        :class:`~repro.store.selection.SelectionStrategy` instance.
        Orthogonal to ``selection``, which picks the *distance oracle*
        (true RTTs vs. coordinate estimates) the strategy ranks with.
    """

    def __init__(self, sim: Simulator, matrix, candidates: Sequence[int],
                 coords, selection: str = "coords",
                 consistency: ConsistencyConfig | None = None,
                 bandwidth: BandwidthModel | None = None,
                 read_timeout_ms: float | None = None,
                 max_read_attempts: int = 3,
                 auto_repair: bool = False,
                 repair_period_ms: float = 5_000.0,
                 retry_policy: RetryPolicy | None = None,
                 domains: "FailureDomains | None" = None,
                 queueing: QueueingConfig | None = None,
                 strategy: "SelectionStrategy | str" = "nearest") -> None:
        if selection not in ("coords", "oracle"):
            raise ValueError("selection must be 'coords' or 'oracle'")
        if read_timeout_ms is not None and read_timeout_ms <= 0:
            raise ValueError("read timeout must be positive")
        if max_read_attempts < 1:
            raise ValueError("need at least one read attempt")
        if repair_period_ms <= 0:
            raise ValueError("repair period must be positive")
        self.sim = sim
        self.network = Network(sim, matrix, bandwidth=bandwidth)
        self.read_timeout_ms = read_timeout_ms
        self.max_read_attempts = max_read_attempts
        self.auto_repair = auto_repair
        self.retry_policy = retry_policy
        if queueing is not None and not isinstance(queueing, QueueingConfig):
            raise ValueError("queueing must be a QueueingConfig or None")
        self.queueing = queueing
        self.strategy = make_strategy(strategy)
        self.queue_rejections = 0
        self.failed_reads = 0
        self.repairs = 0
        self.migration_retries = 0
        self.migrations_abandoned = 0
        self.migration_rollbacks = 0
        self.summary_retries = 0
        self.summaries_lost = 0
        self._fold_buffering = False
        self._shipment_ids = itertools.count(1)
        self.candidates = tuple(int(c) for c in candidates)
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("candidate node ids must be distinct")
        #: Node id -> candidate position, the inverse of ``candidates``.
        #: Every hot path that needs a position uses this map instead of
        #: an O(n) ``candidates.index`` scan.
        self._position_of = {node: position for position, node
                             in enumerate(self.candidates)}
        self.domains = domains
        if domains is not None and domains.n != len(self.candidates):
            raise ValueError(
                f"domains annotate {domains.n} positions but there are "
                f"{len(self.candidates)} candidates")
        #: Monotone replica-state version: bumped whenever any server's
        #: replica set, any unit's installed set, or any object's latest
        #: version changes.  Together with ``network.state_epoch`` it
        #: tells the batched engine whether a cached routing answer can
        #: still be trusted.
        self._state_version = 0
        self._coords = coords
        self.selection = selection
        self.consistency = consistency or ConsistencyConfig()
        self.log = AccessLog()
        self.servers: dict[int, StorageServer] = {
            node_id: StorageServer(self, node_id) for node_id in self.candidates
        }
        self.clients: dict[int, StorageClient] = {}
        self._units: dict[str, _PlacementUnit] = {}
        self._unit_of: dict[str, str] = {}   # member key -> unit key
        #: Coordinator for summary traffic: the first candidate.
        self.coordinator = self.candidates[0]
        # Stamp spans (including micro-cluster events emitted deep in
        # the clustering layer) with this simulation's clock.
        obs.get_tracer().bind_clock(lambda: self.sim.now)
        if auto_repair:
            PeriodicProcess(sim, repair_period_ms, self._check_availability)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_client(self, node_id: int) -> StorageClient:
        """Register a client node."""
        if node_id in self.clients:
            raise ValueError(f"client {node_id} already exists")
        client = StorageClient(self, node_id)
        self.clients[node_id] = client
        return client

    def planar_coords(self) -> np.ndarray:
        """Current planar coordinates of all matrix rows."""
        if hasattr(self._coords, "planar_coords"):
            return self._coords.planar_coords()
        return np.asarray(self._coords, dtype=float)

    def planar_coords_of(self, node_id: int) -> np.ndarray:
        """Current planar coordinates of one node."""
        return self.planar_coords()[node_id]

    # ------------------------------------------------------------------
    # Objects and groups
    # ------------------------------------------------------------------
    def create_object(self, key: str, size_gb: float = 1.0,
                      initial_sites: Sequence[int] | None = None,
                      k: int = 3, read_size_bytes: int = 64 * 1024,
                      controller_config: ControllerConfig | None = None,
                      cost_model: MigrationCostModel | None = None,
                      policy: MigrationPolicy | None = None,
                      epoch_period_ms: float | None = None,
                      home_coordinator: int | None = None) -> DataObject:
        """Create and place a single replicated object.

        ``initial_sites`` (node ids drawn from the candidates) defaults
        to ``k`` random candidates — the uninformed starting point from
        which the controller gradually migrates.  With
        ``epoch_period_ms`` set, a placement epoch runs periodically.
        ``home_coordinator`` pins the unit's default coordinator to a
        specific candidate (sharded catalogs home each shard's units on
        one node); ``None`` uses the store-wide default.
        """
        obj = DataObject(key, size_gb, read_size_bytes=read_size_bytes)
        self._create_unit(key, {key: obj}, initial_sites, k,
                          controller_config, cost_model, policy,
                          epoch_period_ms, home_coordinator)
        return obj

    def create_group(self, group_key: str,
                     members: Mapping[str, float] | Sequence[str],
                     initial_sites: Sequence[int] | None = None,
                     k: int = 3, read_size_bytes: int = 64 * 1024,
                     controller_config: ControllerConfig | None = None,
                     cost_model: MigrationCostModel | None = None,
                     policy: MigrationPolicy | None = None,
                     epoch_period_ms: float | None = None,
                     home_coordinator: int | None = None
                     ) -> list[DataObject]:
        """Create a *group* of objects placed as one virtual object.

        Section II-A: a placement solution "can be applied to a group of
        data objects by treating accesses to any object of the group as
        accesses to a virtual object".  All members share one replica
        set, one summary stream and one migration decision; transfers
        move the whole group (costed at the summed size).

        Parameters
        ----------
        members:
            Either a mapping ``key -> size_gb`` or a sequence of keys
            (each defaulting to 1 GB).
        """
        if not members:
            raise ValueError("a group needs at least one member")
        if isinstance(members, Mapping):
            sizes = {str(k): float(v) for k, v in members.items()}
        else:
            sizes = {str(k): 1.0 for k in members}
        objects = {
            key: DataObject(key, size, read_size_bytes=read_size_bytes)
            for key, size in sizes.items()
        }
        self._create_unit(group_key, objects, initial_sites, k,
                          controller_config, cost_model, policy,
                          epoch_period_ms, home_coordinator)
        return list(objects.values())

    def _create_unit(self, unit_key: str, members: dict[str, DataObject],
                     initial_sites: Sequence[int] | None, k: int,
                     controller_config: ControllerConfig | None,
                     cost_model: MigrationCostModel | None,
                     policy: MigrationPolicy | None,
                     epoch_period_ms: float | None,
                     home_coordinator: int | None = None) -> _PlacementUnit:
        if unit_key in self._units or unit_key in self._unit_of:
            raise ValueError(f"unit {unit_key!r} already exists")
        for key in members:
            if key in self._unit_of or (key != unit_key and key in self._units):
                raise ValueError(f"object {key!r} already exists")

        if initial_sites is None:
            rng = self.sim.rng("initial-placement")
            picks = rng.choice(len(self.candidates),
                               size=min(k, len(self.candidates)),
                               replace=False)
            initial_sites = [self.candidates[int(p)] for p in picks]
        initial_sites = [int(s) for s in initial_sites]
        for s in initial_sites:
            if s not in self.servers:
                raise ValueError(f"initial site {s} is not a candidate")
        if home_coordinator is not None and home_coordinator not in self.servers:
            raise ValueError(
                f"home coordinator {home_coordinator} is not a candidate")

        total_gb = sum(obj.size_gb for obj in members.values())
        config = controller_config or ControllerConfig(k=len(initial_sites))
        positions = [self._position_of[s] for s in initial_sites]
        dc_coords = self.planar_coords()[list(self.candidates)]
        controller = ReplicationController(
            dc_coords, positions, config,
            cost_model=cost_model or MigrationCostModel(object_size_gb=total_gb),
            policy=policy,
            on_migrate=lambda old, new, _unit=unit_key: self._execute_migration(
                _unit, old, new),
            domains=self.domains,
        )
        unit = _PlacementUnit(unit_key=unit_key, members=members,
                              controller=controller,
                              installed=set(initial_sites),
                              latest={key: 0 for key in members},
                              home=home_coordinator)
        self._units[unit_key] = unit
        for key in members:
            self._unit_of[key] = unit_key
        for site in initial_sites:
            for key in members:
                self.servers[site].install(key, version=0)
        if epoch_period_ms is not None:
            unit.epoch_process = PeriodicProcess(
                self.sim, epoch_period_ms,
                lambda _unit=unit_key: self.run_epoch(_unit))
        return unit

    def delete(self, unit_key: str) -> None:
        """Retire an object or group: drop every replica, stop its epochs.

        In-flight requests to the dropped replicas are lost (or time out
        and fail, if client retries are configured) — the same symptom a
        real deletion has.  Accepts the unit key (object key for single
        objects, group key for groups); deleting an individual *member*
        of a group is not supported, as the group is the placement unit.
        """
        unit = self._units.get(unit_key)
        if unit is None:
            if unit_key in self._unit_of:
                raise ValueError(
                    f"{unit_key!r} is a group member; delete the group "
                    f"{self._unit_of[unit_key]!r} instead")
            raise KeyError(f"unknown unit {unit_key!r}")
        self._flush_folds(unit)  # folds predate the deletion
        if unit.epoch_process is not None:
            unit.epoch_process.stop()
        for site in sorted(unit.installed | unit.awaiting):
            for key in unit.members:
                self.servers[site].drop(key)
        for key in unit.members:
            del self._unit_of[key]
        del self._units[unit_key]

    # ------------------------------------------------------------------
    # Catalog queries (accept an object key or a unit/group key)
    # ------------------------------------------------------------------
    def object(self, key: str) -> DataObject:
        """The :class:`DataObject` for member ``key``."""
        unit = self._unit_of_key(key)
        if key not in unit.members:
            raise KeyError(f"{key!r} is a group, not an object")
        return unit.members[key]

    def group_members(self, unit_key: str) -> tuple[str, ...]:
        """Member keys of a unit (a single object is its own member)."""
        return tuple(self._unit_of_key(unit_key).members)

    def unit_keys(self) -> tuple[str, ...]:
        """All placement-unit keys, in creation order."""
        return tuple(self._units)

    def adopt_epoch_process(self, unit_key: str,
                            process: PeriodicProcess) -> None:
        """Register an externally owned epoch clock with a unit.

        A sharded catalog schedules its own (staggered, budget-aware)
        epoch processes; registering them here lets :meth:`delete` stop
        the clock together with the unit.
        """
        unit = self._unit(unit_key)
        if unit.epoch_process is not None:
            raise ValueError(f"unit {unit_key!r} already has an epoch clock")
        unit.epoch_process = process

    def installed_sites(self, key: str) -> tuple[int, ...]:
        """Node ids currently serving reads for ``key``."""
        return tuple(sorted(self._unit_of_key(key).installed))

    def latest_version(self, key: str) -> int:
        """Highest version ever written to member ``key``."""
        return self._unit_of_key(key).latest[key]

    def epoch_reports(self, key: str) -> list[EpochReport]:
        """All placement-epoch reports for the unit owning ``key``."""
        return list(self._unit_of_key(key).epoch_reports)

    def controller(self, key: str) -> ReplicationController:
        """The placement controller of the unit owning ``key``.

        Flushes any deferred summary folds first, so inspecting the
        summaries after a batched run sees the same state eager folding
        would have left.
        """
        unit = self._unit_of_key(key)
        self._flush_folds(unit)
        return unit.controller

    def _unit(self, unit_key: str) -> _PlacementUnit:
        unit = self._units.get(unit_key)
        if unit is None:
            raise KeyError(f"unknown unit {unit_key!r}")
        return unit

    def _unit_of_key(self, key: str) -> _PlacementUnit:
        unit_key = self._unit_of.get(key)
        if unit_key is None:
            if key in self._units:  # allow unit/group keys in queries
                return self._units[key]
            raise KeyError(f"unknown object {key!r}")
        return self._units[unit_key]

    def _unit_key_of(self, key: str) -> str:
        return self._unit_of.get(key, key)

    def _next_version(self, key: str) -> int:
        unit = self._unit_of_key(key)
        self._state_version += 1
        unit.latest[key] += 1
        return unit.latest[key]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_read(self, client: int, key: str) -> list[int]:
        """Replica server(s) a read should contact (quorum-aware)."""
        sites = self.installed_sites(key)
        if not sites:
            raise QuorumError(f"object {key!r} has no installed replicas")
        quorum = min(self.consistency.read_quorum, len(sites))
        ranked = self._rank_sites(client, sites)
        return ranked[:quorum]

    def route_write(self, client: int, key: str) -> int:
        """The replica server a write is sent to (the closest)."""
        sites = self.installed_sites(key)
        if not sites:
            raise QuorumError(f"object {key!r} has no installed replicas")
        return self._rank_sites(client, sites)[0]

    def _rank_sites(self, client: int, sites: Sequence[int]) -> list[int]:
        return self.strategy.rank(client, sites, self)

    def _distance_keys(self, client: int, sites: Sequence[int]) -> list:
        """Distance key per site, under the configured oracle."""
        if self.selection == "oracle":
            return [self.network.matrix.latency(client, s) for s in sites]
        coords = self.planar_coords()
        return [float(np.linalg.norm(coords[client] - coords[s]))
                for s in sites]

    def queue_stats(self) -> dict[str, int]:
        """Aggregate offered/accepted/rejected counts over all servers."""
        offered = accepted = rejected = 0
        for server in self.servers.values():
            queue = server.queue
            offered += queue.offered
            accepted += queue.accepted
            rejected += queue.rejected
        return {"offered": offered, "accepted": accepted,
                "rejected": rejected}

    # ------------------------------------------------------------------
    # Access recording (server-side hook into the controller)
    # ------------------------------------------------------------------
    def _record_server_access(self, server: int, key: str,
                              client_coords: np.ndarray,
                              bytes_exchanged: float,
                              kind: str = "read") -> None:
        unit = self._unit_of_key(key)
        position = self._position_of[server]
        if self._fold_buffering:
            # Batched engine attached: defer the fold.  The buffer is
            # flushed in access-time order before any summary is
            # observed or its site set changes, so the summaries any
            # consumer sees are identical to eager folding.
            unit.fold_buffer.append((self.sim.now, position, client_coords,
                                     bytes_exchanged, kind))
            return
        try:
            unit.controller.record_access(position, client_coords,
                                          bytes_exchanged, kind=kind)
        except KeyError:
            # The replica is being retired (or was just created by a
            # migration the controller already rolled over); its traffic
            # no longer informs placement.
            pass

    def enable_fold_buffering(self) -> None:
        """Defer summary folds into per-unit time-sorted buffers.

        Called by the batched engine: bulk windows and straggler
        per-event folds land in one buffer and are applied — stably
        sorted by access time, grouped per site and summary stream —
        right before anything observes or mutates the summaries.
        Deferral is *exact*: micro-cluster maintenance depends only on
        the fold order, which the sort reproduces (ties are broken by
        buffer insertion order, i.e. event order for real events).
        """
        self._fold_buffering = True

    def flush_pending_accesses(self) -> None:
        """Apply every deferred summary fold (no-op when none pending)."""
        for unit in self._units.values():
            self._flush_folds(unit)

    def _flush_folds(self, unit: _PlacementUnit) -> None:
        buf = unit.fold_buffer
        if not buf:
            return
        unit.fold_buffer = []
        write_aware = unit.controller.config.write_aware
        # (position, stream) -> [time parts, coords parts, weight parts];
        # only write-aware controllers split streams by kind — otherwise
        # reads and writes fold into the same summary and must stay in
        # one merged time order.
        groups: dict[tuple[int, str], tuple[list, list, list]] = {}
        for when, position, coords, weights, kind in buf:
            stream = kind if write_aware else "read"
            parts = groups.setdefault((position, stream), ([], [], []))
            parts[0].append(np.atleast_1d(np.asarray(when, dtype=float)))
            parts[1].append(np.atleast_2d(np.asarray(coords, dtype=float)))
            parts[2].append(np.atleast_1d(np.asarray(weights, dtype=float)))
        for (position, stream), (tparts, cparts, wparts) in groups.items():
            times = np.concatenate(tparts)
            order = np.argsort(times, kind="stable")
            coords = np.vstack(cparts)[order]
            weights = np.concatenate(wparts)[order]
            try:
                unit.controller.record_batch(position, coords, weights,
                                             kind=stream)
            except KeyError:
                # Same retired-replica tolerance as the eager path; the
                # flush always runs before the summary site set changes,
                # so eager and deferred folds hit the same set.
                pass

    # ------------------------------------------------------------------
    # Coordinator election (failover protocol; see docs/chaos.md)
    # ------------------------------------------------------------------
    def current_coordinator(self, key: str) -> int:
        """The node id that would coordinate ``key``'s next epoch.

        Deterministic successor ranking: the unit's default coordinator
        (its home, or the store-wide first candidate) while it is
        viable, then the unit's replica holders in sorted order, then
        the remaining candidates.  A candidate is viable when it is up
        and at least one live replica holder can ship summaries to it.
        With every candidate down the default coordinator is returned
        (the epoch then degrades to "no reachable summaries").
        """
        unit = self._unit_of_key(key)
        default = unit.home if unit.home is not None else self.coordinator
        ranking = list(dict.fromkeys(
            [default] + sorted(unit.installed)
            + list(self.candidates)))
        live_holders = [s for s in sorted(unit.installed)
                        if self.network.is_up(s)]
        for site in ranking:
            if not self.network.is_up(site):
                continue
            if site in live_holders or any(
                    self.network.can_reach(h, site) for h in live_holders):
                return site
        return default

    # ------------------------------------------------------------------
    # Placement epochs and migration
    # ------------------------------------------------------------------
    def run_epoch(self, unit_key: str,
                  max_moves: int | None = None) -> EpochReport:
        """Run one placement epoch for a unit (Algorithm 1 + policy).

        The epoch runs at the elected coordinator: only summaries from
        replica sites that can currently reach it are pooled, and only
        candidates it can reach are eligible migration targets — a
        partition degrades the epoch instead of corrupting it.

        ``max_moves`` overrides the controller's ``max_epoch_moves``
        for this one epoch — a sharded catalog passes the remaining
        global migration budget here, ``0`` meaning "no new sites this
        epoch" (shrinks still go through).  ``None`` keeps the
        controller's own configuration.
        """
        unit = self._unit_of_key(unit_key)
        self._flush_folds(unit)  # the epoch pools the summaries next
        registry = obs.get_registry()
        # Refresh candidate coordinates: with live gossip they drift.
        unit.controller.dc_coords = self.planar_coords()[list(self.candidates)]
        coordinator = self.current_coordinator(unit_key)
        _, lease = unit.controller.elect_coordinator(
            [self._position_of[coordinator]])
        reachable = [self._position_of[s] for s in sorted(unit.installed)
                     if self.network.can_reach(s, coordinator)]
        eligible = [p for p, site in enumerate(self.candidates)
                    if self.network.can_reach(coordinator, site)
                    and self.network.can_reach(site, coordinator)]
        with registry.phase("store.epoch"):
            report = unit.controller.run_epoch(
                self.sim.rng(f"epoch-{unit.unit_key}"),
                reachable=reachable, eligible=eligible, lease=lease,
                max_moves=max_moves)
        if registry.enabled:
            registry.counter("store.epochs").inc()
        unit.epoch_reports.append(report)
        # Charge the summary shipping to the network.
        if report.summary_bytes > 0:
            shippers = (report.reachable_sites
                        if report.reachable_sites is not None
                        else report.previous_sites)
            per_site = max(
                report.summary_bytes // max(len(shippers), 1), 1)
            for position in shippers:
                site = self.candidates[position]
                if site != coordinator:
                    self._ship_summary(unit, site, coordinator, per_site)
        return report

    def _ship_summary(self, unit: _PlacementUnit, site: int,
                      coordinator: int, size_bytes: int) -> None:
        shipment = next(self._shipment_ids)
        self.servers[site].send(coordinator, "summary",
                                payload={"unit": unit.unit_key,
                                         "shipment": shipment},
                                size_bytes=size_bytes)
        if self.retry_policy is None:
            return
        stale = unit.pending_summaries.pop(site, None)
        if stale is not None and stale.timeout_event is not None:
            stale.timeout_event.cancel()  # superseded by this epoch's copy
        pending = _PendingShipment(size_bytes=size_bytes,
                                   shipment_id=shipment)
        pending.timeout_event = self.sim.schedule(
            self.retry_policy.timeout_ms, self._on_summary_timeout,
            unit.unit_key, site, coordinator)
        unit.pending_summaries[site] = pending

    def _summary_received(self, unit_key: str, site: int,
                          shipment: int | None = None) -> None:
        unit = self._units.get(unit_key)
        if unit is None:
            return
        pending = unit.pending_summaries.get(site)
        if pending is None:
            return
        if shipment is not None and shipment != pending.shipment_id:
            # A delayed copy of an earlier, superseded shipment: the
            # current epoch's summary is still in flight — leaving the
            # pending entry armed keeps its loss observable.
            return
        del unit.pending_summaries[site]
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()

    def _on_summary_timeout(self, unit_key: str, site: int,
                            coordinator: int) -> None:
        unit = self._units.get(unit_key)
        if unit is None:
            return
        pending = unit.pending_summaries.get(site)
        if pending is None:
            return
        pending.timeout_event = None
        registry = obs.get_registry()
        if pending.attempts >= self.retry_policy.max_attempts:
            del unit.pending_summaries[site]
            self.summaries_lost += 1
            if registry.enabled:
                registry.counter("store.summaries_lost").inc()
            return
        self.summary_retries += 1
        if registry.enabled:
            registry.counter("store.summary_retries").inc()
        backoff = self.retry_policy.backoff_ms(
            pending.attempts, rng=self.sim.rng("retry-jitter"))
        pending.attempts += 1
        self.sim.schedule(backoff, self._resend_summary,
                          unit_key, site, coordinator)

    def _resend_summary(self, unit_key: str, site: int,
                        coordinator: int) -> None:
        unit = self._units.get(unit_key)
        if unit is None:
            return
        pending = unit.pending_summaries.get(site)
        if pending is None:
            return  # acknowledged while the backoff ran
        self.servers[site].send(coordinator, "summary",
                                payload={"unit": unit_key,
                                         "shipment": pending.shipment_id},
                                size_bytes=pending.size_bytes)
        pending.timeout_event = self.sim.schedule(
            self.retry_policy.timeout_ms, self._on_summary_timeout,
            unit_key, site, coordinator)

    def _execute_migration(self, unit_key: str, old_positions: tuple[int, ...],
                           new_positions: tuple[int, ...]) -> None:
        """Move replicas: transfer to new sites, retire old ones after."""
        unit = self._unit(unit_key)
        new_sites = {self.candidates[p] for p in new_positions}
        unit.target = new_sites
        unit.awaiting = new_sites - unit.installed
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("store.migrations.started").inc()
            registry.counter("store.migration_bytes").inc(
                unit.total_size_bytes * len(unit.awaiting))
            obs.get_tracer().record(
                obs.MIGRATION_START, time=self.sim.now, unit=unit_key,
                sources=sorted(unit.installed), targets=sorted(new_sites),
                transfers=len(unit.awaiting))
        if not unit.awaiting:
            # Pure shrink (or reorder): retire immediately.
            self._finalize_migration(unit_key)
            return
        for target in sorted(unit.awaiting):
            self._send_transfer(unit, target)
            if self.retry_policy is not None:
                pending = _PendingShipment(size_bytes=unit.total_size_bytes)
                pending.timeout_event = self.sim.schedule(
                    self.retry_policy.timeout_ms, self._on_transfer_timeout,
                    unit_key, target)
                unit.pending_transfers[target] = pending

    def _send_transfer(self, unit: _PlacementUnit, target: int) -> None:
        """Ship the unit from the closest live holder to ``target``.

        Sources the target cannot be reached from are skipped when a
        reachable one exists, so a retry after a partial heal picks a
        working path; with none, the closest holder is used anyway and
        the network drops the message (the timeout then fires).
        """
        sources = sorted(unit.installed)
        usable = [s for s in sources if self.network.can_reach(s, target)]
        source = min(usable or sources,
                     key=lambda s: self.network.matrix.latency(s, target))
        self.servers[source].send(
            target, "replicate",
            payload={"versions": unit.current_versions(self.servers[source]),
                     "unit": unit.unit_key, "reason": "migration"},
            size_bytes=unit.total_size_bytes)

    def _on_transfer_timeout(self, unit_key: str, target: int) -> None:
        unit = self._units.get(unit_key)
        if unit is None or unit.target is None:
            return
        pending = unit.pending_transfers.get(target)
        if pending is None:
            return  # the transfer completed in the meantime
        pending.timeout_event = None
        registry = obs.get_registry()
        if pending.attempts >= self.retry_policy.max_attempts:
            # Budget exhausted: abandon this target.  The finalize step
            # rolls the placement back onto surviving sites.
            del unit.pending_transfers[target]
            unit.abandoned.add(target)
            unit.awaiting.discard(target)
            self.migrations_abandoned += 1
            if registry.enabled:
                registry.counter("store.migrations.abandoned").inc()
            if not unit.awaiting:
                self._finalize_migration(unit_key)
            return
        self.migration_retries += 1
        if registry.enabled:
            registry.counter("store.migration_retries").inc()
        backoff = self.retry_policy.backoff_ms(
            pending.attempts, rng=self.sim.rng("retry-jitter"))
        pending.attempts += 1
        self.sim.schedule(backoff, self._retry_transfer, unit_key, target)

    def _retry_transfer(self, unit_key: str, target: int) -> None:
        unit = self._units.get(unit_key)
        if unit is None or unit.target is None:
            return
        pending = unit.pending_transfers.get(target)
        if pending is None:
            return  # completed while the backoff ran
        self._send_transfer(unit, target)
        pending.timeout_event = self.sim.schedule(
            self.retry_policy.timeout_ms, self._on_transfer_timeout,
            unit_key, target)

    def _migration_transfer_done(self, unit_key: str, node_id: int) -> None:
        unit = self._unit(unit_key)
        pending = unit.pending_transfers.pop(node_id, None)
        if pending is not None and pending.timeout_event is not None:
            pending.timeout_event.cancel()
        if node_id in unit.abandoned:
            # A retried copy landed after the attempt budget ran out and
            # the rollback already excluded this site; drop the replica
            # rather than resurrect a half-abandoned migration.
            for key in unit.members:
                self.servers[node_id].drop(key)
            return
        if unit.target is None or node_id not in unit.target:
            # Straggler: a duplicate delivery (original + retry both got
            # through) arriving after the migration finalized, or a copy
            # addressed to a site no current migration targets.  The
            # placement already settled without it — re-finalizing here
            # would corrupt it, so keep the bytes only if the site ended
            # up holding the unit anyway.
            if node_id not in unit.installed:
                for key in unit.members:
                    self.servers[node_id].drop(key)
            return
        unit.awaiting.discard(node_id)
        # New replicas serve reads as soon as they are installed.
        self._state_version += 1
        unit.installed.add(node_id)
        if not unit.awaiting:
            self._finalize_migration(unit_key)

    def _finalize_migration(self, unit_key: str) -> None:
        unit = self._unit(unit_key)
        self._flush_folds(unit)  # a rollback re-keys the summaries
        assert unit.target is not None
        final = set(unit.target)
        if unit.abandoned:
            # Roll back: abandoned targets never installed, so retain
            # the closest-numbered old sites instead — the degree of
            # replication is preserved through a failed migration.
            final -= unit.abandoned
            for site in sorted(unit.installed - final):
                if len(final) >= unit.controller.k:
                    break
                final.add(site)
            self.migration_rollbacks += 1
            registry = obs.get_registry()
            if registry.enabled:
                registry.counter("store.migration_rollbacks").inc()
                obs.get_tracer().record(
                    obs.MIGRATION_FINISH, time=self.sim.now, unit=unit_key,
                    sites=sorted(final), rolled_back=True,
                    abandoned=sorted(unit.abandoned))
        for site in sorted(unit.installed - final):
            for key in unit.members:
                self.servers[site].drop(key)
        self._state_version += 1
        unit.installed = set(final)
        rolled_back = bool(unit.abandoned)
        unit.target = None
        unit.abandoned = set()
        if rolled_back:
            # The controller adopted the proposal optimistically when the
            # verdict fired; re-align it with what actually happened.
            unit.controller.sync_sites(
                [self._position_of[s] for s in sorted(unit.installed)])
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("store.migrations.finished").inc()
            if not rolled_back:
                obs.get_tracer().record(
                    obs.MIGRATION_FINISH, time=self.sim.now, unit=unit_key,
                    sites=sorted(unit.installed))

    # ------------------------------------------------------------------
    # Availability: failure handling and re-replication
    # ------------------------------------------------------------------
    def _check_availability(self) -> None:
        """Periodic sweep: drop dead replicas, re-adopt recovered ones,
        and re-replicate up to the target degree (auto-repair)."""
        for unit_key in list(self._units):
            self._check_unit_availability(unit_key)

    def _check_unit_availability(self, unit_key: str) -> None:
        unit = self._unit(unit_key)
        self._flush_folds(unit)  # sync_sites below re-keys the summaries
        if unit.target is not None:
            return  # a migration is in flight; let it settle first
        live = {s for s in unit.installed if self.network.is_up(s)}
        lost = unit.installed - live
        target_k = unit.controller.k

        # Recovered servers that still hold the replicas (durable disks)
        # rejoin for free, up to the target degree.
        if len(live) < target_k:
            for site in self.candidates:
                if len(live) >= target_k:
                    break
                if (site not in live and self.network.is_up(site)
                        and self.servers[site].holds_unit(unit)):
                    live.add(site)

        if lost or live != unit.installed:
            if live:
                self._state_version += 1
                unit.installed = live
                unit.controller.sync_sites(
                    [self._position_of[s] for s in sorted(live)])
            else:
                # Every replica is down; keep the old set and wait for a
                # recovery — there is nothing to repair *from*.
                return

        if not self.auto_repair or len(unit.installed) >= target_k:
            return

        # Re-replicate from the closest live holder onto the closest
        # live non-holder.
        holders = sorted(unit.installed)
        spares = [s for s in self.candidates
                  if s not in unit.installed and self.network.is_up(s)
                  and s not in unit.awaiting]
        needed = target_k - len(unit.installed) - len(unit.awaiting)
        for _ in range(max(needed, 0)):
            if not spares:
                break
            # Prefer the spare closest to any current holder (cheap,
            # fast transfer); ties broken by id for determinism.
            spare = min(spares, key=lambda s: min(
                self.network.matrix.latency(h, s) for h in holders))
            spares.remove(spare)
            source = min(holders,
                         key=lambda h: self.network.matrix.latency(h, spare))
            unit.awaiting.add(spare)
            self.repairs += 1
            self.servers[source].send(
                spare, "replicate",
                payload={"versions": unit.current_versions(self.servers[source]),
                         "unit": unit_key, "reason": "repair"},
                size_bytes=unit.total_size_bytes)

    def _repair_transfer_done(self, unit_key: str, node_id: int) -> None:
        unit = self._unit(unit_key)
        self._flush_folds(unit)  # sync_sites below re-keys the summaries
        unit.awaiting.discard(node_id)
        if not self.network.is_up(node_id):
            return  # it crashed again while the transfer was in flight
        self._state_version += 1
        unit.installed.add(node_id)
        unit.controller.sync_sites(
            [self._position_of[s] for s in sorted(unit.installed)])
