"""Declarative chaos scenarios: a TOML/JSON file in, a fault plan out.

A scenario file names the world, the workload, the store's resilience
knobs and a schedule of faults::

    name = "smoke"
    seed = 7
    runs = 2

    [world]
    n_nodes = 40                  # emulated nodes
    n_dc = 8                      # candidate data centers

    [object]
    k = 3
    epoch_period_ms = 10_000.0

    [workload]
    rate_per_second = 120.0
    duration_ms = 60_000.0
    engine = "event"              # or "batched" (see docs/performance.md)

    [store]                       # resilience knobs (all optional)
    read_timeout_ms = 600.0
    auto_repair = true

    [retry]                       # RetryPolicy overrides (optional)
    timeout_ms = 2_000.0
    max_attempts = 3

    [[faults]]
    kind = "crash"                # crash | partition | flaky-link |
    at = 20_000.0                 #   crash-coordinator
    node = 2                      # candidate *position*, not a node id
    until = 35_000.0              # optional auto-repair time

Fault node references are positions into the candidate list (the
scenario cannot know which node ids a seeded run draws).  ``partition``
takes ``group_a`` (and optional ``group_b``, default: the remaining
candidates); ``flaky-link`` takes ``a``/``b``/``loss``/``symmetric``;
``crash-coordinator`` needs no node — it kills whatever node the
failover protocol currently ranks as coordinator when it fires.

With a ``[domains]`` section the candidates are annotated with a
region → DC → rack failure-domain tree (:mod:`repro.net.domains`)::

    [domains]
    regions = 2                   # > 0 enables the model
    dcs_per_region = 2
    racks_per_dc = 2
    p_region = 0.02               # per-level outage probabilities of
    p_dc = 0.05                   #   the co-failure *model* the placer
    p_rack = 0.10                 #   optimizes against
    p_node = 0.02
    domain_assignment = "proximity"   # or "contiguous"

    [[faults]]
    kind = "domain-outage"        # crash every member of one domain
    at = 30_000.0
    domain = "densest-rack"       # or "rack:3", "dc:0", "region:1"
    until = 45_000.0

With a ``[catalog]`` section the run drives a sharded multi-key catalog
(:mod:`repro.catalog`) instead of the classic single object::

    [catalog]
    n_keys = 200                  # > 0 enables catalog mode
    n_shards = 4                  # consistent-hash ring shards
    keys_per_group = 10           # fold consecutive keys into groups
    epoch_stagger = 1.0           # spread per-unit epoch phases

    [[faults]]
    kind = "crash-shard-coordinator"
    at = 20_000.0
    shard = 1                     # kill shard 1's elected coordinator
    until = 40_000.0

In catalog mode ``max_epoch_moves`` (in ``[object]``) becomes the
catalog's *global* per-window migration budget, drained across shards
in epoch-firing order.

With a ``[queueing]`` section servers stop answering instantly: reads
occupy their server for a sampled service time and wait FIFO behind
earlier admitted work (:mod:`repro.store.queueing`); a ``[selection]``
section swaps the client routing policy
(:mod:`repro.store.selection`)::

    [queueing]
    service_model = "deterministic"   # none | deterministic | lognormal
    service_ms = 2.0                  # constant, or lognormal median
    service_sigma = 0.5               # lognormal log-space std dev
    queue_capacity = 64               # optional bound; beyond = rejected

    [selection]
    strategy = "least-pending"        # nearest | least-pending | c3

``availability_lambda`` (in ``[object]``) prices co-failure risk into
the placement objective; ``hotspot_exponent`` / ``hotspot_anchor`` (in
``[workload]``) skew the client population toward one candidate so a
latency-only placement has a blast radius worth measuring.  A
``"densest-<level>"`` outage resolves its victim domain *when it
fires*: the domain of that level holding the most installed replicas.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any

from repro.core.migration import RetryPolicy
from repro.net.domains import LEVELS, FailureDomains
from repro.store.queueing import QueueingConfig
from repro.store.selection import STRATEGIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.latency import LatencyMatrix

__all__ = ["FaultSpec", "ChaosScenario", "load_scenario", "FAULT_KINDS"]

#: Fault kind -> required entry fields (beyond ``kind`` and ``at``).
FAULT_KINDS: dict[str, tuple[str, ...]] = {
    "crash": ("node",),
    "partition": ("group_a",),
    "flaky-link": ("a", "b", "loss"),
    "crash-coordinator": (),
    "crash-shard-coordinator": ("shard",),
    "domain-outage": ("domain",),
}

#: Optional entry fields accepted per kind.
_OPTIONAL: dict[str, tuple[str, ...]] = {
    "crash": ("until",),
    "partition": ("group_b", "until"),
    "flaky-link": ("symmetric", "until"),
    "crash-coordinator": ("until",),
    "crash-shard-coordinator": ("until",),
    "domain-outage": ("until",),
}


def _parse_domain_spec(spec: str) -> tuple[str, str, int | None]:
    """Split a fault's domain spec into (mode, level, id).

    ``"densest-rack"`` -> ``("densest", "rack", None)``;
    ``"rack:3"`` -> ``("explicit", "rack", 3)``.  Raises on anything
    else.
    """
    if spec.startswith("densest-"):
        level = spec[len("densest-"):]
        if level not in LEVELS:
            raise ValueError(f"unknown domain level in {spec!r}; "
                             f"known: {LEVELS}")
        return "densest", level, None
    level, sep, raw = spec.partition(":")
    if not sep or level not in LEVELS:
        raise ValueError(
            f"bad domain spec {spec!r}; use 'densest-<level>' or "
            f"'<level>:<id>' with level in {LEVELS}")
    try:
        domain_id = int(raw)
    except ValueError:
        raise ValueError(f"bad domain id in {spec!r}") from None
    if domain_id < 0:
        raise ValueError(f"domain id in {spec!r} must be non-negative")
    return "explicit", level, domain_id


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  Node references are candidate positions."""

    kind: str
    at: float
    node: int | None = None
    group_a: tuple[int, ...] = ()
    group_b: tuple[int, ...] = ()
    a: int | None = None
    b: int | None = None
    loss: float | None = None
    symmetric: bool = False
    until: float | None = None
    domain: str | None = None
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {sorted(FAULT_KINDS)}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.until is not None and self.until <= self.at:
            raise ValueError("fault 'until' must come after 'at'")
        if self.kind == "crash" and self.node is None:
            raise ValueError("crash fault needs a 'node'")
        if self.kind == "partition" and not self.group_a:
            raise ValueError("partition fault needs a non-empty 'group_a'")
        if self.kind == "flaky-link":
            if self.a is None or self.b is None or self.loss is None:
                raise ValueError("flaky-link fault needs 'a', 'b', 'loss'")
            if not 0.0 <= self.loss <= 1.0:
                raise ValueError("link loss must lie in [0, 1]")
        if self.kind == "crash-shard-coordinator":
            if self.shard is None:
                raise ValueError(
                    "crash-shard-coordinator fault needs a 'shard'")
            if self.shard < 0:
                raise ValueError("fault shard must be non-negative")
        if self.kind == "domain-outage":
            if not self.domain:
                raise ValueError("domain-outage fault needs a 'domain'")
            _parse_domain_spec(self.domain)  # format check; bounds are
            # the scenario's job — it knows the domain-tree shape.


@dataclass(frozen=True)
class ChaosScenario:
    """One chaos experiment: world + workload + fault schedule."""

    name: str = "chaos"
    seed: int = 0
    runs: int = 1
    # World
    n_nodes: int = 40
    n_dc: int = 8
    coord_system: str = "rnp"
    # Object / control loop
    k: int = 3
    epoch_period_ms: float = 10_000.0
    max_micro_clusters: int = 10
    min_relative_gain: float = 0.02
    availability_lambda: float = 0.0
    max_epoch_moves: int | None = None
    # Sharded catalog ([catalog] section; n_keys == 0 keeps the classic
    # single-object scenario).  ``max_epoch_moves`` becomes the catalog's
    # *global* per-window migration budget in catalog mode.
    n_keys: int = 0
    n_shards: int = 1
    keys_per_group: int = 1
    epoch_stagger: float = 0.0
    # Failure domains (regions == 0 disables the model)
    regions: int = 0
    dcs_per_region: int = 1
    racks_per_dc: int = 1
    p_region: float = 0.0
    p_dc: float = 0.0
    p_rack: float = 0.0
    p_node: float = 0.0
    domain_assignment: str = "proximity"
    # Workload
    rate_per_second: float = 120.0
    duration_ms: float = 60_000.0
    settle_ms: float = 5_000.0
    engine: str = "event"
    hotspot_exponent: float = 0.0
    hotspot_anchor: int = 0
    # Store resilience knobs
    read_timeout_ms: float | None = 600.0
    max_read_attempts: int = 3
    auto_repair: bool = True
    repair_period_ms: float = 2_000.0
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    # Server queueing ([queueing]; "none" with no capacity keeps the
    # uncontended store) and client selection ([selection]).
    service_model: str = "none"
    service_ms: float = 0.0
    service_sigma: float = 0.5
    queue_capacity: int | None = None
    strategy: str = "nearest"
    # Faults
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("a scenario needs at least one run")
        if not 2 <= self.n_dc <= self.n_nodes:
            raise ValueError("need 2 <= n_dc <= n_nodes")
        if not 1 <= self.k <= self.n_dc:
            raise ValueError("need 1 <= k <= n_dc")
        if self.duration_ms <= 0 or self.epoch_period_ms <= 0:
            raise ValueError("durations must be positive")
        if self.engine not in ("event", "batched"):
            raise ValueError(f"unknown engine {self.engine!r} "
                             "(use 'event' or 'batched')")
        if self.domain_assignment not in ("proximity", "contiguous"):
            raise ValueError(f"unknown domain_assignment "
                             f"{self.domain_assignment!r} "
                             "(use 'proximity' or 'contiguous')")
        if self.regions < 0:
            raise ValueError("regions must be non-negative")
        if self.regions > 0:
            if self.dcs_per_region < 1 or self.racks_per_dc < 1:
                raise ValueError("domain counts must be positive")
            racks = self.regions * self.dcs_per_region * self.racks_per_dc
            if racks > self.n_dc:
                raise ValueError(f"{racks} racks for {self.n_dc} candidates "
                                 "— every rack needs at least one")
            for name in ("p_region", "p_dc", "p_rack", "p_node"):
                if not 0.0 <= getattr(self, name) < 1.0:
                    raise ValueError(f"{name} must lie in [0, 1)")
        if self.availability_lambda < 0:
            raise ValueError("availability_lambda must be non-negative")
        if self.availability_lambda > 0 and self.regions == 0:
            raise ValueError("availability_lambda > 0 needs a [domains] "
                             "section with regions > 0")
        if self.max_epoch_moves is not None and self.max_epoch_moves < 1:
            raise ValueError("max_epoch_moves must be at least 1")
        if self.n_keys < 0:
            raise ValueError("n_keys must be non-negative")
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.keys_per_group < 1:
            raise ValueError("keys_per_group must be at least 1")
        if not 0.0 <= self.epoch_stagger <= 1.0:
            raise ValueError("epoch_stagger must lie in [0, 1]")
        if self.hotspot_exponent < 0:
            raise ValueError("hotspot_exponent must be non-negative")
        # Queueing/selection knobs: delegate the detailed validation to
        # the factories so scenario files and direct construction reject
        # identically.
        self.build_queueing()
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown selection strategy "
                             f"{self.strategy!r}; known: {STRATEGIES}")
        if not 0 <= self.hotspot_anchor < self.n_dc:
            raise ValueError(f"hotspot_anchor {self.hotspot_anchor} is not "
                             f"a candidate position (< {self.n_dc})")
        domain_counts = {
            "region": self.regions,
            "dc": self.regions * self.dcs_per_region,
            "rack": self.regions * self.dcs_per_region * self.racks_per_dc,
        }
        horizon = self.duration_ms + self.settle_ms
        for fault in self.faults:
            if fault.at >= horizon:
                raise ValueError(f"fault at {fault.at} ms lies beyond the "
                                 f"run horizon {horizon} ms")
            if fault.kind == "crash-shard-coordinator":
                if self.n_keys == 0:
                    raise ValueError(
                        "crash-shard-coordinator faults need a [catalog] "
                        "section with n_keys > 0")
                if fault.shard >= self.n_shards:
                    raise ValueError(
                        f"fault references shard {fault.shard}, but the "
                        f"scenario has {self.n_shards} shards")
            if fault.kind == "domain-outage":
                if self.regions == 0:
                    raise ValueError("domain-outage faults need a [domains] "
                                     "section with regions > 0")
                mode, level, domain_id = _parse_domain_spec(fault.domain)
                if mode == "explicit" and domain_id >= domain_counts[level]:
                    raise ValueError(
                        f"fault references {fault.domain!r}, but the "
                        f"scenario has {domain_counts[level]} {level}s")
            for position in ((fault.node,) if fault.node is not None else ()) \
                    + fault.group_a + fault.group_b \
                    + tuple(p for p in (fault.a, fault.b) if p is not None):
                if not 0 <= position < self.n_dc:
                    raise ValueError(
                        f"fault references candidate position {position}, "
                        f"but the scenario has {self.n_dc} candidates")

    def build_queueing(self) -> "QueueingConfig | None":
        """Materialize the server-queueing config, or ``None``.

        ``None`` (the ``service_model = "none"``, no-capacity default)
        keeps the store on the certified uncontended path.
        """
        return QueueingConfig.from_params(
            service_model=self.service_model, service_ms=self.service_ms,
            service_sigma=self.service_sigma,
            queue_capacity=self.queue_capacity)

    def build_domains(self, matrix: "LatencyMatrix | None" = None,
                      candidates: Any = None) -> FailureDomains | None:
        """Materialize the failure-domain annotation, or ``None``.

        ``"proximity"`` assignment derives racks/DCs/regions from the
        run's ground-truth RTTs (pass the run's matrix and candidate
        node ids); ``"contiguous"`` slices candidate positions evenly
        and needs neither.
        """
        if self.regions == 0:
            return None
        probs = dict(p_region=self.p_region, p_dc=self.p_dc,
                     p_rack=self.p_rack, p_node=self.p_node)
        if self.domain_assignment == "contiguous":
            return FailureDomains.contiguous(
                self.n_dc, self.regions, self.dcs_per_region,
                self.racks_per_dc, **probs)
        if matrix is None or candidates is None:
            raise ValueError("proximity domain assignment needs the run's "
                             "latency matrix and candidate node ids")
        return FailureDomains.from_matrix(
            matrix, candidates, self.regions, self.dcs_per_region,
            self.racks_per_dc, **probs)


def _parse_fault(entry: dict, index: int, source: str) -> FaultSpec:
    if not isinstance(entry, dict):
        raise ValueError(f"{source}: fault #{index} must be a table/object")
    kind = entry.get("kind")
    if not kind:
        raise ValueError(f"{source}: fault #{index} needs a 'kind'")
    if kind not in FAULT_KINDS:
        raise ValueError(f"{source}: fault #{index} has unknown kind "
                         f"{kind!r}; known: {sorted(FAULT_KINDS)}")
    allowed = {"kind", "at", *FAULT_KINDS[kind], *_OPTIONAL[kind]}
    unknown = sorted(set(entry) - allowed)
    if unknown:
        raise ValueError(f"{source}: fault #{index} ({kind}) does not "
                         f"accept {unknown}; allowed: {sorted(allowed)}")
    if "at" not in entry:
        raise ValueError(f"{source}: fault #{index} needs an 'at' time")
    payload = dict(entry)
    for group in ("group_a", "group_b"):
        if group in payload:
            payload[group] = tuple(int(p) for p in payload[group])
    return FaultSpec(**payload)


def _parse_scenario(payload: dict, source: str) -> ChaosScenario:
    if not isinstance(payload, dict):
        raise ValueError(f"{source}: chaos scenario must be a table/object")
    flat: dict[str, Any] = {}
    for key in ("name", "seed", "runs"):
        if key in payload:
            flat[key] = payload[key]
    # The nested tables are flat namespaces over ChaosScenario fields.
    scenario_fields = {f.name for f in fields(ChaosScenario)}
    for section in ("world", "object", "workload", "store", "domains",
                    "catalog", "queueing", "selection"):
        table = payload.get(section, {})
        unknown = sorted(set(table) - scenario_fields)
        if unknown:
            raise ValueError(f"{source}: unknown [{section}] fields "
                             f"{unknown}")
        flat.update(table)
    retry_table = payload.get("retry", None)
    if retry_table is not None:
        policy_fields = {f.name for f in fields(RetryPolicy)}
        unknown = sorted(set(retry_table) - policy_fields)
        if unknown:
            raise ValueError(f"{source}: unknown [retry] fields {unknown}")
        flat["retry"] = RetryPolicy(**retry_table)
    faults = payload.get("faults", [])
    flat["faults"] = tuple(_parse_fault(entry, i, source)
                           for i, entry in enumerate(faults))
    stray = sorted(set(payload) - {"name", "seed", "runs", "world", "object",
                                   "workload", "store", "domains", "catalog",
                                   "queueing", "selection", "retry",
                                   "faults"})
    if stray:
        raise ValueError(f"{source}: unknown top-level entries {stray}")
    return ChaosScenario(**flat)


def load_scenario(path: str) -> ChaosScenario:
    """Load a chaos scenario from a ``.toml`` or ``.json`` file."""
    extension = os.path.splitext(path)[1].lower()
    if extension == ".toml":
        import tomllib
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    elif extension == ".json":
        with open(path) as handle:
            payload = json.load(handle)
    else:
        raise ValueError(f"unsupported chaos scenario format {extension!r} "
                         "(use .toml or .json)")
    return _parse_scenario(payload, path)
