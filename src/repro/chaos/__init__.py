"""Chaos harness: declarative fault scenarios against the live stack.

The paper defers data availability under failures to future work; this
package measures it.  A :class:`~repro.chaos.scenario.ChaosScenario`
(a small TOML/JSON file, mirroring :mod:`repro.runner.sweep`) describes
a live store run plus a schedule of faults — crashes, network
partitions, flaky links, a coordinator assassination — and
:func:`~repro.chaos.harness.run_chaos` executes it paired with a
failure-free baseline of the same world, through the parallel runner.
The headline number is the latency ratio: how much the faults cost the
control loop (coordinator failover, migration retry/rollback, degraded
epochs) compared to fair weather.

See ``docs/chaos.md`` for the scenario format and the failover
protocol, and ``examples/chaos/`` for ready-to-run scenarios.
"""

from repro.chaos.harness import (
    ChaosRunResult,
    ChaosRunSpec,
    chaos_summary_json,
    format_chaos,
    run_chaos,
    run_scenario,
)
from repro.chaos.scenario import ChaosScenario, FaultSpec, load_scenario

__all__ = [
    "ChaosRunResult",
    "ChaosRunSpec",
    "ChaosScenario",
    "FaultSpec",
    "chaos_summary_json",
    "format_chaos",
    "load_scenario",
    "run_chaos",
    "run_scenario",
]
