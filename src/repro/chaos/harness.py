"""Executing chaos scenarios: paired faulty/baseline live-stack runs.

Each scenario run builds the full live stack (synthetic PlanetLab
world, embedded coordinates, replicated store with the control loop,
Poisson access workload), injects the scenario's fault schedule, and
reports a :class:`ChaosRunResult` of counters.  :func:`run_chaos` runs
every scenario run twice — with the faults and without, over the same
world and seeds — through :mod:`repro.runner.pool`, so chaos sweeps
parallelize, cache and resume exactly like the figure sweeps, and the
summary is bit-identical at any ``--jobs`` level.

Seeding: every stream derives from the run's identity via
:func:`repro.runner.jobs.seed_sequence` — ``(seed, run_index, stream)``
— never from execution order.  The faulty run consumes extra randomness
only from its own named simulator streams (``retry-jitter``,
``net.loss``), so the workload stream stays aligned with the baseline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.chaos.scenario import (
    ChaosScenario,
    FaultSpec,
    _parse_domain_spec,
)
from repro.core.controller import ControllerConfig
from repro.core.migration import MigrationPolicy
from repro.runner.jobs import seed_sequence
from repro.runner.pool import execute

__all__ = ["ChaosRunResult", "ChaosRunSpec", "run_scenario", "run_chaos",
           "format_chaos", "chaos_summary_json"]

#: Stream tags mixed into seed_sequence keys (arbitrary, fixed).
_CANDIDATES_STREAM = 101
_EMBED_STREAM = 102


@dataclass(frozen=True)
class ChaosRunResult:
    """Counters of one scenario run (one seed, faulty or baseline)."""

    reads_issued: int
    reads_completed: int
    failed_reads: int
    mean_delay_ms: float
    #: Mean delay over the final quarter of the run — "after the dust
    #: settles"; the acceptance latency ratio is measured on this.
    final_delay_ms: float
    #: Tail of the read-delay distribution over the whole run — the
    #: metrics the ``[queueing]``/``[selection]`` axes move.
    p50_ms: float
    p99_ms: float
    p999_ms: float
    #: Reads dropped at a full server queue (``queue_capacity`` runs).
    queue_rejections: int
    crashes: int
    partitions: int
    failovers: int
    coordinator: int
    epochs: int
    epochs_degraded: int
    stale_summaries_dropped: int
    migrations: int
    migration_retries: int
    migrations_abandoned: int
    migration_rollbacks: int
    summary_retries: int
    summaries_lost: int
    repairs: int
    #: Installed replicas hit by a crash over the whole run, and the
    #: lowest number of live replicas observed at any crash instant —
    #: the blast-radius metrics the availability certification compares
    #: between λ > 0 and latency-only placement.
    replicas_lost: int
    min_live_replicas: int
    final_sites: tuple[int, ...]


@dataclass(frozen=True)
class ChaosRunSpec:
    """One runnable chaos cell: (scenario, run index, faulty?).

    Satisfies the runner's job protocol (``payload``/``execute``/
    ``kind``/``setting``), so chaos runs go through the same pool,
    cache and resume machinery as every other experiment.
    """

    scenario: ChaosScenario
    run_index: int
    faulty: bool

    kind = "chaos-run"
    setting = None                  # the scenario carries its own world

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "scenario": asdict(self.scenario),
            "run_index": self.run_index,
            "faulty": self.faulty,
        }

    def execute(self, world=None) -> ChaosRunResult:
        return run_scenario(self.scenario, run_index=self.run_index,
                            faulty=self.faulty)


def _schedule_faults(injector, store, scenario: ChaosScenario,
                     candidates: Sequence[int], domains=None,
                     unit_list: Sequence[str] = ("obj",),
                     catalog=None) -> None:
    """Translate candidate-position fault specs into injector calls.

    ``unit_list`` names every placement unit in the run (a single
    ``"obj"`` classically, the catalog's group keys in catalog mode);
    coordinator- and density-targeted faults aim at whatever those
    units' control planes look like when the fault fires.
    """
    def node_of(position: int) -> int:
        return candidates[position]

    ref_unit = unit_list[0]

    for fault in scenario.faults:
        if fault.kind == "crash":
            node = node_of(fault.node)
            injector.crash_at(fault.at, node)
            if fault.until is not None:
                injector.recover_at(fault.until, node)
        elif fault.kind == "partition":
            group_a = tuple(node_of(p) for p in fault.group_a)
            positions_b = fault.group_b or tuple(
                p for p in range(len(candidates)) if p not in fault.group_a)
            group_b = tuple(node_of(p) for p in positions_b)
            injector.partition_at(fault.at, group_a, group_b)
            if fault.until is not None:
                injector.heal_at(fault.until, group_a, group_b)
        elif fault.kind == "flaky-link":
            a, b = node_of(fault.a), node_of(fault.b)
            injector.flaky_link_at(fault.at, a, b, fault.loss,
                                   symmetric=fault.symmetric)
            if fault.until is not None:
                injector.fix_link_at(fault.until, a, b,
                                     symmetric=fault.symmetric)
        elif fault.kind == "crash-coordinator":
            # The victim is decided when the fault fires: whatever node
            # the failover protocol currently ranks first.
            def assassinate(until=fault.until) -> None:
                victim = store.current_coordinator(ref_unit)
                injector.crash_now(victim)
                if until is not None:
                    injector.recover_at(until, victim)
            store.sim.schedule_at(fault.at, assassinate)
        elif fault.kind == "crash-shard-coordinator":
            # Catalog mode: kill whichever node currently coordinates
            # the named shard's units — the shard's home while healthy,
            # its elected successor after a prior failover.
            def behead(shard=fault.shard, until=fault.until) -> None:
                units = catalog.shards[shard].unit_keys
                victim = store.current_coordinator(units[0])
                injector.crash_now(victim)
                if until is not None:
                    injector.recover_at(until, victim)
            store.sim.schedule_at(fault.at, behead)
        elif fault.kind == "domain-outage":
            mode, level, domain_id = _parse_domain_spec(fault.domain)
            if mode == "explicit":
                for position in domains.members(level, domain_id):
                    node = node_of(position)
                    injector.crash_at(fault.at, node)
                    if fault.until is not None:
                        injector.recover_at(fault.until, node)
            else:
                # Densest outage: the victim domain is decided when the
                # fault fires — the one holding the most installed
                # replicas — so the blast aims at wherever the placer
                # (latency-only or λ-weighted) actually put the data.
                def strike(level=level, until=fault.until) -> None:
                    positions = [store._position_of[s]
                                 for unit in unit_list
                                 for s in store.installed_sites(unit)]
                    for position in domains.densest_members(level,
                                                            positions):
                        node = node_of(position)
                        injector.crash_now(node)
                        if until is not None:
                            injector.recover_at(until, node)
                store.sim.schedule_at(fault.at, strike)
        else:  # pragma: no cover - FaultSpec validates kinds
            raise ValueError(f"unknown fault kind {fault.kind!r}")


def run_scenario(scenario: ChaosScenario, run_index: int = 0,
                 faulty: bool = True) -> ChaosRunResult:
    """Run one scenario cell and return its counters.

    ``faulty=False`` runs the identical world, workload and seeds with
    the fault schedule left out — the paired baseline the latency ratio
    is measured against.
    """
    from repro.analysis.experiment import draw_candidates
    from repro.coords import embed_matrix
    from repro.net import PlanetLabParams, synthetic_planetlab_matrix
    from repro.sim import FailureInjector, Simulator
    from repro.store import ReplicatedStore
    from repro.workloads import AccessWorkload, ClientPopulation

    matrix, _ = synthetic_planetlab_matrix(
        PlanetLabParams(n=scenario.n_nodes), seed=scenario.seed)
    planar = embed_matrix(
        matrix, system=scenario.coord_system, rounds=40,
        rng=np.random.default_rng(
            seed_sequence(scenario.seed, run_index, _EMBED_STREAM)),
    ).coords[:, :3]
    candidates, clients = draw_candidates(
        matrix, scenario.n_dc,
        np.random.default_rng(
            seed_sequence(scenario.seed, run_index, _CANDIDATES_STREAM)))

    domains = scenario.build_domains(matrix, candidates)

    sim_seed = int(seed_sequence(scenario.seed, run_index)
                   .generate_state(1)[0])
    sim = Simulator(seed=sim_seed)
    store = ReplicatedStore(
        sim, matrix, candidates, planar, selection="oracle",
        read_timeout_ms=scenario.read_timeout_ms,
        max_read_attempts=scenario.max_read_attempts,
        auto_repair=scenario.auto_repair,
        repair_period_ms=scenario.repair_period_ms,
        retry_policy=scenario.retry,
        domains=domains,
        queueing=scenario.build_queueing(),
        strategy=scenario.strategy)
    policy = MigrationPolicy(min_relative_gain=scenario.min_relative_gain,
                             min_absolute_gain_ms=0.5)
    catalog = None
    if scenario.n_keys > 0:
        # Catalog mode: a sharded multi-key catalog replaces the single
        # object.  ``max_epoch_moves`` becomes the catalog's *global*
        # per-window budget, so it must not also cap each unit's
        # controller individually.
        from repro.catalog import PlacementGroups, ShardedCatalog, keyspace

        keys = keyspace(scenario.n_keys)
        groups = (PlacementGroups.chunked(keys, scenario.keys_per_group)
                  if scenario.keys_per_group > 1
                  else PlacementGroups.singletons(keys))
        catalog = ShardedCatalog(
            store, keys, n_shards=scenario.n_shards, groups=groups,
            k=scenario.k,
            controller_config=ControllerConfig(
                k=scenario.k,
                max_micro_clusters=scenario.max_micro_clusters,
                availability_lambda=scenario.availability_lambda),
            policy=policy,
            epoch_period_ms=scenario.epoch_period_ms,
            epoch_stagger=scenario.epoch_stagger,
            max_epoch_moves=scenario.max_epoch_moves)
        workload_keys = list(catalog.keys())
        unit_list: tuple[str, ...] = catalog.unit_keys()
    else:
        store.create_object(
            "obj", k=scenario.k,
            controller_config=ControllerConfig(
                k=scenario.k, max_micro_clusters=scenario.max_micro_clusters,
                availability_lambda=scenario.availability_lambda,
                max_epoch_moves=scenario.max_epoch_moves),
            policy=policy,
            epoch_period_ms=scenario.epoch_period_ms)
        workload_keys = ["obj"]
        unit_list = ("obj",)
    ref_unit = unit_list[0]
    if scenario.engine == "batched":
        from repro.store.batched import BatchedAccessWorkload
        workload_cls = BatchedAccessWorkload
    else:
        workload_cls = AccessWorkload
    if scenario.hotspot_exponent > 0:
        # Skew the client mass toward one candidate site, so a
        # latency-only placer concentrates replicas near the hotspot —
        # the concentration the availability objective is meant to
        # counteract.
        anchor = candidates[scenario.hotspot_anchor]
        population = ClientPopulation.hotspot(
            clients, matrix, anchor, scenario.hotspot_exponent)
    else:
        population = ClientPopulation.uniform(clients)
    workload = workload_cls(store, population, workload_keys,
                            rate_per_second=scenario.rate_per_second)

    # Blast-radius accounting: every crash is scored against the
    # installed replica set at the instant it lands (the injector fires
    # the hook after marking the victim down, so ``is_up`` already
    # reflects the crash).
    blast = {"lost": 0, "min_live": scenario.k}

    def note_crash(node: int) -> None:
        for unit in unit_list:
            installed = store.installed_sites(unit)
            if node in installed:
                blast["lost"] += 1
            live = sum(1 for s in installed if store.network.is_up(s))
            blast["min_live"] = min(blast["min_live"], live)

    injector = FailureInjector(store.network, on_crash=note_crash)
    if faulty:
        _schedule_faults(injector, store, scenario, candidates,
                         domains=domains, unit_list=unit_list,
                         catalog=catalog)

    sim.run_until(scenario.duration_ms + scenario.settle_ms)

    reads = [r for r in store.log.records if r.kind == "read"]
    horizon = scenario.duration_ms + scenario.settle_ms
    tail = [r for r in reads if r.time >= 0.75 * horizon]
    quantiles = store.log.tail_quantiles("read")
    reports = [r for unit in unit_list for r in store.epoch_reports(unit)]
    controllers = [store.controller(unit) for unit in unit_list]
    return ChaosRunResult(
        reads_issued=workload.operations_issued,
        reads_completed=len(reads),
        failed_reads=store.failed_reads,
        mean_delay_ms=(float(np.mean([r.delay_ms for r in reads]))
                       if reads else 0.0),
        final_delay_ms=(float(np.mean([r.delay_ms for r in tail]))
                        if tail else 0.0),
        p50_ms=quantiles["p50"],
        p99_ms=quantiles["p99"],
        p999_ms=quantiles["p999"],
        queue_rejections=store.queue_rejections,
        crashes=len(injector.crashes()),
        partitions=len(injector.partitions()),
        failovers=sum(c.failovers for c in controllers),
        coordinator=store.current_coordinator(ref_unit),
        epochs=len(reports),
        epochs_degraded=sum(1 for r in reports if r.degraded),
        stale_summaries_dropped=sum(r.stale_summaries_dropped
                                    for r in reports),
        migrations=sum(c.tally.migrations for c in controllers),
        migration_retries=store.migration_retries,
        migrations_abandoned=store.migrations_abandoned,
        migration_rollbacks=store.migration_rollbacks,
        summary_retries=store.summary_retries,
        summaries_lost=store.summaries_lost,
        repairs=store.repairs,
        replicas_lost=blast["lost"],
        min_live_replicas=blast["min_live"],
        final_sites=store.installed_sites(ref_unit),
    )


def _aggregate(results: Sequence[ChaosRunResult]) -> dict[str, Any]:
    """Pool one arm's runs: mean latency, summed counters."""
    totals = {
        name: sum(getattr(r, name) for r in results)
        for name in ("reads_issued", "reads_completed", "failed_reads",
                     "crashes", "partitions", "failovers", "epochs",
                     "epochs_degraded", "stale_summaries_dropped",
                     "migrations", "migration_retries",
                     "migrations_abandoned", "migration_rollbacks",
                     "summary_retries", "summaries_lost", "repairs",
                     "replicas_lost", "queue_rejections")
    }
    totals["min_live_replicas"] = min(
        r.min_live_replicas for r in results)
    totals["mean_delay_ms"] = float(
        np.mean([r.mean_delay_ms for r in results]))
    totals["final_delay_ms"] = float(
        np.mean([r.final_delay_ms for r in results]))
    for name in ("p50_ms", "p99_ms", "p999_ms"):
        totals[name] = float(np.mean([getattr(r, name) for r in results]))
    totals["completion_rate"] = (
        totals["reads_completed"] / totals["reads_issued"]
        if totals["reads_issued"] else 0.0)
    return totals


def run_chaos(scenario: ChaosScenario, *,
              jobs: int | None = 1,
              cache_dir: str | None = None,
              resume: bool = False,
              chunk_size: int | None = None) -> dict[str, Any]:
    """Run a scenario's faulty and baseline arms; return the summary.

    Every run index yields two cells (faults on / faults off) farmed
    through the parallel runner.  The summary is a plain JSON-able dict
    whose serialization (:func:`chaos_summary_json`) is byte-identical
    regardless of worker count.
    """
    specs: list[ChaosRunSpec] = []
    for run_index in range(scenario.runs):
        specs.append(ChaosRunSpec(scenario, run_index, faulty=True))
        specs.append(ChaosRunSpec(scenario, run_index, faulty=False))
    registry = obs.get_registry()
    with registry.phase("chaos.run"):
        results = execute(specs, jobs=jobs, cache_dir=cache_dir,
                          resume=resume, chunk_size=chunk_size)
    faulty = _aggregate(results[0::2])
    baseline = _aggregate(results[1::2])
    # Ratio of *final* latency: the faults in a scenario are expected to
    # hurt while active; what the harness certifies is that the control
    # loop recovers — the tail of the faulty run should match fair
    # weather.
    ratio = (faulty["final_delay_ms"] / baseline["final_delay_ms"]
             if baseline["final_delay_ms"] > 0 else 0.0)
    if registry.enabled:
        registry.counter("chaos.runs").inc(len(specs))
    return {
        "scenario": scenario.name,
        "runs": scenario.runs,
        "faults": len(scenario.faults),
        "faulty": faulty,
        "baseline": baseline,
        "latency_ratio": ratio,
    }


def chaos_summary_json(summary: dict[str, Any]) -> str:
    """Canonical JSON form of a chaos summary (sorted keys)."""
    import json
    return json.dumps(summary, indent=2, sort_keys=True)


def format_chaos(summary: dict[str, Any]) -> str:
    """Human-readable table of one chaos summary."""
    faulty, baseline = summary["faulty"], summary["baseline"]
    lines = [
        f"chaos scenario {summary['scenario']!r}: "
        f"{summary['runs']} run(s), {summary['faults']} fault(s)",
        "",
        f"{'':>24} | {'faulty':>10} | {'baseline':>10}",
        "-" * 52,
    ]
    rows = [
        ("reads completed", "reads_completed"),
        ("reads issued", "reads_issued"),
        ("failed reads", "failed_reads"),
        ("mean delay (ms)", "mean_delay_ms"),
        ("final delay (ms)", "final_delay_ms"),
        ("p50 delay (ms)", "p50_ms"),
        ("p99 delay (ms)", "p99_ms"),
        ("p999 delay (ms)", "p999_ms"),
        ("completion rate", "completion_rate"),
        ("queue rejections", "queue_rejections"),
        ("crashes", "crashes"),
        ("partitions", "partitions"),
        ("coordinator failovers", "failovers"),
        ("epochs (degraded)", None),
        ("migrations", "migrations"),
        ("migration retries", "migration_retries"),
        ("migrations abandoned", "migrations_abandoned"),
        ("migration rollbacks", "migration_rollbacks"),
        ("summary retries", "summary_retries"),
        ("summaries lost", "summaries_lost"),
        ("repairs", "repairs"),
        ("replicas lost", "replicas_lost"),
        ("min live replicas", "min_live_replicas"),
    ]
    for label, field_name in rows:
        if field_name is None:
            f_val = f"{faulty['epochs']} ({faulty['epochs_degraded']})"
            b_val = f"{baseline['epochs']} ({baseline['epochs_degraded']})"
        elif field_name in ("mean_delay_ms", "final_delay_ms",
                            "p50_ms", "p99_ms", "p999_ms"):
            f_val = f"{faulty[field_name]:.1f}"
            b_val = f"{baseline[field_name]:.1f}"
        elif field_name == "completion_rate":
            f_val = f"{faulty[field_name]:.0%}"
            b_val = f"{baseline[field_name]:.0%}"
        else:
            f_val = str(faulty[field_name])
            b_val = str(baseline[field_name])
        lines.append(f"{label:>24} | {f_val:>10} | {b_val:>10}")
    lines.append("")
    lines.append(f"latency ratio (faulty / baseline): "
                 f"{summary['latency_ratio']:.3f}")
    return "\n".join(lines)
