"""Client populations and object popularity models."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.topology import GeoTopology

__all__ = ["ClientPopulation", "ZipfObjectPopularity"]


class ClientPopulation:
    """Which client nodes issue requests, and how intensely.

    A population is a set of client node ids with non-negative base
    weights; sampling draws a client proportionally to weight (times any
    temporal modulation the workload applies).

    Use the constructors:

    * :meth:`uniform` — equal weight for every client (the paper's
      evaluation setting);
    * :meth:`region_weighted` — weight clients by their geographic
      region, e.g. to model a service popular in Europe;
    * the plain constructor for explicit weights.
    """

    def __init__(self, clients: Sequence[int],
                 weights: Sequence[float] | None = None) -> None:
        self.clients = tuple(int(c) for c in clients)
        if not self.clients:
            raise ValueError("population needs at least one client")
        if len(set(self.clients)) != len(self.clients):
            raise ValueError("client ids must be distinct")
        if weights is None:
            self.weights = np.ones(len(self.clients))
        else:
            self.weights = np.asarray(list(weights), dtype=float)
            if self.weights.shape != (len(self.clients),):
                raise ValueError("one weight per client required")
            if np.any(self.weights < 0) or self.weights.sum() <= 0:
                raise ValueError("weights must be non-negative, sum positive")

    def __len__(self) -> int:
        return len(self.clients)

    @staticmethod
    def uniform(clients: Sequence[int]) -> "ClientPopulation":
        """Every client equally likely — the paper's setting."""
        return ClientPopulation(clients)

    @staticmethod
    def region_weighted(clients: Sequence[int], topology: GeoTopology,
                        region_weights: dict[str, float],
                        default_weight: float = 1.0) -> "ClientPopulation":
        """Weight each client by its region's weight.

        Parameters
        ----------
        region_weights:
            Map region name -> relative intensity; unlisted regions get
            ``default_weight``.
        """
        if default_weight < 0:
            raise ValueError("default weight must be non-negative")
        weights = [
            float(region_weights.get(topology.region_name(c), default_weight))
            for c in clients
        ]
        return ClientPopulation(clients, weights)

    @staticmethod
    def hotspot(clients: Sequence[int], matrix, anchor: int,
                exponent: float = 2.0) -> "ClientPopulation":
        """Weight clients by proximity to an anchor node.

        Client ``c`` gets weight ``(1 / (rtt(c, anchor) + 1)) **
        exponent`` — the chaos harness's hotspot packing, promoted to a
        named constructor: traffic concentrates around ``anchor``, and
        larger exponents concentrate it harder (the workload that
        saturates the anchor's nearest replica and separates queue-aware
        selection strategies from ``nearest`` on tail latency).
        """
        if exponent < 0:
            raise ValueError("hotspot exponent must be non-negative")
        weights = [(1.0 / (float(matrix.latency(c, anchor)) + 1.0))
                   ** exponent for c in clients]
        return ClientPopulation(clients, weights)

    def sample(self, rng: np.random.Generator,
               modulation: np.ndarray | None = None) -> int:
        """Draw one client id (optionally modulated per client)."""
        weights = self.weights
        if modulation is not None:
            modulation = np.asarray(modulation, dtype=float)
            if modulation.shape != weights.shape:
                raise ValueError("one modulation factor per client required")
            weights = weights * modulation
        total = weights.sum()
        if total <= 0:
            # Fully suppressed population: fall back to base weights.
            weights, total = self.weights, self.weights.sum()
        return self.clients[int(rng.choice(len(self.clients), p=weights / total))]

    def sample_block(self, uniforms: np.ndarray,
                     modulation: np.ndarray | None = None) -> np.ndarray:
        """Vectorized :meth:`sample` over pre-drawn unit uniforms.

        ``uniforms`` holds one ``rng.random()`` draw per access;
        ``modulation`` is an optional ``(len(uniforms), len(self))``
        matrix of per-access per-client multipliers.  Row ``i`` of the
        result is the client id :meth:`sample` would return from the
        same uniform draw and modulation row — including the
        re-normalized CDF inversion ``Generator.choice`` performs and
        the fall-back to base weights when a row is fully suppressed —
        so the batched engine consumes the RNG stream identically.
        """
        u = np.asarray(uniforms, dtype=float)
        n = len(self.clients)
        if modulation is None:
            # Every row shares one CDF; ``searchsorted(side="right")``
            # on it returns the same count as ``(cdf <= u).sum()``.
            cdf = (self.weights / self.weights.sum()).cumsum()
            cdf /= cdf[-1]
            idx = np.searchsorted(cdf, u, side="right")
            return np.asarray(self.clients, dtype=int)[idx]
        else:
            modulation = np.asarray(modulation, dtype=float)
            if modulation.shape != (u.size, n):
                raise ValueError("one modulation factor per access "
                                 "and client required")
            weights = self.weights * modulation
            totals = weights.sum(axis=1)
            suppressed = totals <= 0
            if suppressed.any():
                weights = weights.copy()
                weights[suppressed] = self.weights
                totals[suppressed] = self.weights.sum()
        # Generator.choice(n, p=p) draws one unit uniform and inverts
        # the re-normalized CDF with searchsorted(..., side="right");
        # (cdf <= u).sum() is the same count, batched.
        cdf = (weights / totals[:, None]).cumsum(axis=1)
        cdf /= cdf[:, -1:]
        idx = (cdf <= u[:, None]).sum(axis=1)
        return np.asarray(self.clients, dtype=int)[idx]

    def index_of(self, client: int) -> int:
        """Position of ``client`` in :attr:`clients`."""
        return self.clients.index(client)


class ZipfObjectPopularity:
    """Zipf-distributed object selection for multi-object workloads.

    Object ``i`` (0-based rank) is drawn with probability proportional
    to ``1 / (i + 1) ** exponent`` — the classic web-popularity skew.
    """

    def __init__(self, keys: Sequence[str], exponent: float = 0.9) -> None:
        self.keys = tuple(keys)
        if not self.keys:
            raise ValueError("at least one object key required")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        ranks = np.arange(1, len(self.keys) + 1, dtype=float)
        probs = ranks ** (-exponent)
        self.probs = probs / probs.sum()
        self.exponent = exponent

    def sample(self, rng: np.random.Generator) -> str:
        """Draw one object key."""
        return self.keys[int(rng.choice(len(self.keys), p=self.probs))]

    def sample_block(self, uniforms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample` over pre-drawn unit uniforms.

        Entry ``i`` is the index into :attr:`keys` that :meth:`sample`
        would pick from the same ``rng.random()`` draw (see
        :meth:`ClientPopulation.sample_block` for the CDF equivalence).
        """
        u = np.asarray(uniforms, dtype=float)
        cdf = self.probs.cumsum()
        cdf /= cdf[-1]
        return (cdf <= u[:, None]).sum(axis=1)

    def probability_of(self, key: str) -> float:
        """Selection probability of ``key``."""
        return float(self.probs[self.keys.index(key)])
