"""Access workloads: driving the store, or generating replayable traces."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.process import PeriodicProcess
from repro.store.kvstore import ReplicatedStore
from repro.workloads.population import ClientPopulation, ZipfObjectPopularity
from repro.workloads.temporal import ConstantPattern, TemporalPattern

__all__ = ["AccessEvent", "AccessWorkload", "generate_trace", "replay_trace",
           "save_trace", "load_trace"]


@dataclass(frozen=True)
class AccessEvent:
    """One entry of a generated trace."""

    time_ms: float
    client: int
    key: str
    kind: str  # "read" or "write"


class AccessWorkload:
    """A simulator process issuing store operations.

    Requests arrive as a Poisson-like process: every tick of a periodic
    driver (running at ``rate_per_second``, jittered), one client is
    drawn from the population (modulated by the temporal pattern) and
    issues a read — or a write with probability ``write_fraction``.

    Parameters
    ----------
    store:
        The replicated store to drive (clients are registered lazily).
    population:
        Who issues requests.
    keys:
        Object keys to exercise; one key gets all requests, several keys
        are drawn from ``popularity`` (default Zipf 0.9).
    rate_per_second:
        Aggregate request rate across all clients.
    write_fraction:
        Share of operations that are writes (0 = paper's read-only mode).
    pattern:
        Temporal modulation of per-client intensity.
    """

    def __init__(self, store: ReplicatedStore, population: ClientPopulation,
                 keys: Sequence[str], rate_per_second: float = 100.0,
                 write_fraction: float = 0.0,
                 pattern: TemporalPattern | None = None,
                 popularity: ZipfObjectPopularity | None = None) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write fraction must lie in [0, 1]")
        if not keys:
            raise ValueError("at least one object key required")
        self.store = store
        self.population = population
        self.keys = tuple(keys)
        self.write_fraction = write_fraction
        self.pattern = pattern or ConstantPattern()
        self.popularity = popularity or ZipfObjectPopularity(self.keys)
        self.operations_issued = 0
        self._rng = store.sim.rng("workload")
        for client in population.clients:
            if client not in store.clients:
                store.add_client(client)
        period_ms = 1000.0 / rate_per_second
        self._process = PeriodicProcess(
            store.sim, period_ms, self._issue, jitter=0.5, rng=self._rng)

    def _issue(self) -> None:
        modulation = self.pattern.modulation(self.store.sim.now, self.population)
        client_id = self.population.sample(self._rng, modulation)
        client = self.store.clients[client_id]
        key = (self.keys[0] if len(self.keys) == 1
               else self.popularity.sample(self._rng))
        if self.write_fraction > 0 and self._rng.random() < self.write_fraction:
            client.write(key)
        else:
            client.read(key)
        self.operations_issued += 1

    def stop(self) -> None:
        """Stop issuing operations."""
        self._process.stop()


def generate_trace(population: ClientPopulation, keys: Sequence[str],
                   duration_ms: float, rate_per_second: float,
                   rng: np.random.Generator,
                   write_fraction: float = 0.0,
                   pattern: TemporalPattern | None = None,
                   popularity: ZipfObjectPopularity | None = None
                   ) -> list[AccessEvent]:
    """Generate a replayable access trace (no simulator required).

    Inter-arrival times are exponential with mean ``1/rate``; client
    selection honours the temporal pattern at each event's timestamp.
    """
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    if rate_per_second <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write fraction must lie in [0, 1]")
    if not keys:
        raise ValueError("at least one object key required")
    pattern = pattern or ConstantPattern()
    # Default popularity ranks keys in *sorted* order, not enumeration
    # order: the same seed then yields a byte-identical trace no matter
    # how the caller enumerates the keyspace (a dict's insertion order,
    # a catalog's shard order, ...).  An explicit ``popularity`` keeps
    # whatever ranking the caller built.
    popularity = popularity or ZipfObjectPopularity(tuple(sorted(keys)))

    events: list[AccessEvent] = []
    mean_gap_ms = 1000.0 / rate_per_second
    t = float(rng.exponential(mean_gap_ms))
    while t < duration_ms:
        modulation = pattern.modulation(t, population)
        client = population.sample(rng, modulation)
        key = keys[0] if len(keys) == 1 else popularity.sample(rng)
        kind = "write" if (write_fraction > 0
                           and rng.random() < write_fraction) else "read"
        events.append(AccessEvent(t, client, key, kind))
        t += float(rng.exponential(mean_gap_ms))
    return events


def save_trace(events: Sequence[AccessEvent], path: str) -> None:
    """Persist a trace as JSON-lines (one event per line).

    The format is the interchange point with real application logs: any
    log that can be converted to ``{"time_ms", "client", "key", "kind"}``
    lines can be replayed through the store.
    """
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps({
                "time_ms": event.time_ms,
                "client": event.client,
                "key": event.key,
                "kind": event.kind,
            }) + "\n")


def load_trace(path: str) -> list[AccessEvent]:
    """Load a JSON-lines trace written by :func:`save_trace`.

    Malformed input — a line that is not valid JSON (e.g. a truncated
    final line from an interrupted writer), a non-object line, missing
    or mistyped fields, an unknown kind — raises :class:`ValueError`
    naming the offending line number.
    """
    events: list[AccessEvent] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"bad trace record on line {line_number}: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"bad trace record on line {line_number}: expected an "
                    f"object, got {type(record).__name__}")
            try:
                event = AccessEvent(float(record["time_ms"]),
                                    int(record["client"]),
                                    str(record["key"]),
                                    str(record["kind"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad trace record on line {line_number}: {exc}"
                ) from exc
            if event.kind not in ("read", "write"):
                raise ValueError(
                    f"bad trace record on line {line_number}: "
                    f"unknown kind {event.kind!r}"
                )
            events.append(event)
    return events


def replay_trace(store: ReplicatedStore, events: Sequence[AccessEvent],
                 time_offset_ms: float = 0.0, engine: str = "event") -> int:
    """Schedule a recorded trace against the store, verbatim.

    Every event is scheduled at ``time_offset_ms + event.time_ms`` on
    the store's simulator (so the offset must keep all events in the
    future); clients are registered on demand.  Returns the number of
    scheduled operations.  Replaying the same trace against different
    store configurations gives perfectly paired comparisons — the
    "realistic evaluation based on data accesses in actual applications"
    the paper's conclusion asks for, with the trace standing in for an
    application log.

    ``engine="batched"`` feeds the trace through the vectorized
    :class:`~repro.store.batched.BatchedAccessEngine` instead of
    scheduling one heap event per access — identical store-level
    outcomes (the differential suite pins this) at a fraction of the
    event count, which is what makes replaying multi-million-line
    traces practical.
    """
    if engine not in ("event", "batched"):
        raise ValueError(f"unknown engine {engine!r}")
    sim = store.sim
    for event in events:
        if time_offset_ms + event.time_ms < sim.now:
            raise ValueError(
                f"event at {event.time_ms} ms lies in the simulator's past"
            )
        if event.client not in store.clients:
            store.add_client(event.client)
    if engine == "batched":
        from repro.store.batched import BatchedAccessEngine
        from repro.workloads.batched import TraceArrivals

        keys = tuple(dict.fromkeys(e.key for e in events))
        key_pos = {k: i for i, k in enumerate(keys)}
        source = TraceArrivals(
            np.array([time_offset_ms + e.time_ms for e in events]),
            np.array([e.client for e in events], dtype=int),
            np.array([key_pos[e.key] for e in events], dtype=int),
            np.array([e.kind == "write" for e in events], dtype=bool),
            keys)
        BatchedAccessEngine(store, source)  # registers as a data plane
        return len(events)
    count = 0
    for event in events:
        when = time_offset_ms + event.time_ms
        client = store.clients[event.client]
        action = client.write if event.kind == "write" else client.read
        sim.schedule_at(when, action, event.key)
        count += 1
    return count
