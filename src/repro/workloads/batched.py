"""Vectorized arrival generation for the batched data-plane engine.

The per-event :class:`~repro.workloads.access.AccessWorkload` drives the
store through a jittered :class:`~repro.sim.process.PeriodicProcess`:
every tick draws, in order, a client choice uniform, an optional object
key uniform, an optional write-fraction uniform and the next-interval
jitter uniform — all from the simulator's ``"workload"`` stream.

:class:`WorkloadArrivals` replays that exact consumption pattern in
blocks: one ``rng.random(B * draws_per_tick)`` call supplies the same
uniforms the scalar path would draw one at a time (``Generator.random``
is block/sequential equivalent), tick times come from a ``cumsum`` left
fold (bitwise the scalar ``now + interval`` chain), and client/key
selection inverts the same re-normalized CDFs ``Generator.choice``
uses.  Every produced arrival is therefore *bitwise identical* — same
time, client, key and kind — to the one the event-driven workload would
issue, which is what lets the batched engine serve as a drop-in
replacement for the reference path.

:class:`TraceArrivals` is the same interface over a recorded trace, so
``replay_trace`` can feed either engine.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from repro.workloads.population import ClientPopulation, ZipfObjectPopularity
from repro.workloads.temporal import ConstantPattern, TemporalPattern

__all__ = ["ArrivalBatch", "WorkloadArrivals", "TraceArrivals"]


class ArrivalBatch(NamedTuple):
    """A block of client accesses, one array entry per access."""

    times: np.ndarray     # absolute simulated ms, non-decreasing
    clients: np.ndarray   # client node ids
    key_idx: np.ndarray   # indices into the source's ``keys`` tuple
    is_write: np.ndarray  # bool per access

    @property
    def size(self) -> int:
        return self.times.size


def _empty_batch() -> ArrivalBatch:
    return ArrivalBatch(np.empty(0), np.empty(0, dtype=int),
                        np.empty(0, dtype=int), np.empty(0, dtype=bool))


def _concat(batches: list[ArrivalBatch]) -> ArrivalBatch:
    if not batches:
        return _empty_batch()
    if len(batches) == 1:
        return batches[0]
    return ArrivalBatch(*(np.concatenate(parts)
                          for parts in zip(*batches)))


class WorkloadArrivals:
    """RNG-exact vectorized replica of ``AccessWorkload``'s tick stream.

    Parameters mirror :class:`~repro.workloads.access.AccessWorkload`;
    ``rng`` must be the same ``sim.rng("workload")`` stream and
    ``start_time`` the simulated time of construction, so the first
    jitter draw and every subsequent tick line up with the scalar path.
    """

    def __init__(self, rng: np.random.Generator,
                 population: ClientPopulation, keys: Sequence[str],
                 rate_per_second: float = 100.0,
                 write_fraction: float = 0.0,
                 pattern: TemporalPattern | None = None,
                 popularity: ZipfObjectPopularity | None = None,
                 jitter: float = 0.5, start_time: float = 0.0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write fraction must lie in [0, 1]")
        if not keys:
            raise ValueError("at least one object key required")
        self._rng = rng
        self.population = population
        self.keys = tuple(keys)
        self.write_fraction = write_fraction
        self.pattern = pattern or ConstantPattern()
        self.popularity = popularity or ZipfObjectPopularity(self.keys)
        self.period_ms = 1000.0 / rate_per_second
        self._lo = 1.0 - jitter
        self._span = (1.0 + jitter) - (1.0 - jitter)
        # Uniform draws per tick, in stream order: client choice,
        # object key (multi-key only), write coin (write_fraction > 0
        # only), next-interval jitter.
        self._multikey = len(self.keys) > 1
        self._key_col = 1 if self._multikey else -1
        self._write_col = (1 + self._multikey) if write_fraction > 0 else -1
        self._dpt = 2 + self._multikey + (write_fraction > 0)
        # PeriodicProcess draws the first interval at construction.
        self._next_time = start_time + self.period_ms * rng.uniform(
            1.0 - jitter, 1.0 + jitter)
        self._pending: ArrivalBatch | None = None
        self._stopped = False

    def stop(self) -> None:
        """Stop producing arrivals (mirrors ``AccessWorkload.stop``)."""
        self._stopped = True
        self._pending = None

    def _generate_block(self, count: int) -> ArrivalBatch:
        """Produce the next ``count`` ticks of the stream."""
        draws = self._rng.random(count * self._dpt).reshape(count,
                                                            self._dpt)
        intervals = self.period_ms * (self._lo
                                      + self._span * draws[:, -1])
        # cumsum is the same left fold as the scalar now+interval chain,
        # seeded with the pending tick time; the final entry is the
        # first tick of the *next* block.
        path = np.empty(count + 1)
        path[0] = self._next_time
        path[1:] = intervals
        times_all = np.cumsum(path)
        times = times_all[:count]
        self._next_time = float(times_all[count])

        # A constant pattern modulates every weight by exactly 1.0 —
        # skipping the (ticks x clients) matrix entirely is bitwise-free.
        if type(self.pattern) is ConstantPattern:
            modulation = None
        else:
            modulation = self.pattern.modulation_block(times,
                                                       self.population)
        clients = self.population.sample_block(draws[:, 0], modulation)
        if self._multikey:
            key_idx = self.popularity.sample_block(draws[:, self._key_col])
        else:
            key_idx = np.zeros(count, dtype=int)
        if self.write_fraction > 0:
            is_write = draws[:, self._write_col] < self.write_fraction
        else:
            is_write = np.zeros(count, dtype=bool)
        return ArrivalBatch(times, clients, key_idx, is_write)

    def generate_until(self, bound: float) -> ArrivalBatch:
        """All arrivals with ``time <= bound`` not yet handed out.

        Over-generated ticks (the tail of a block that crossed
        ``bound``) are buffered for the next call; the underlying RNG
        stream only ever moves forward.
        """
        if self._stopped:
            return _empty_batch()
        chunks: list[ArrivalBatch] = []
        if self._pending is not None:
            pending = self._pending
            if pending.times[0] > bound:
                return _empty_batch()
            cut = int(np.searchsorted(pending.times, bound, side="right"))
            chunks.append(ArrivalBatch(*(a[:cut] for a in pending)))
            self._pending = (ArrivalBatch(*(a[cut:] for a in pending))
                             if cut < pending.size else None)
            if self._pending is not None:
                return chunks[0]
        while self._next_time <= bound:
            expected = (bound - self._next_time) / self.period_ms
            count = int(min(max(expected + 16.0, 64.0), 65536.0))
            block = self._generate_block(count)
            if block.times[-1] <= bound:
                chunks.append(block)
                continue
            cut = int(np.searchsorted(block.times, bound, side="right"))
            chunks.append(ArrivalBatch(*(a[:cut] for a in block)))
            if cut < block.size:
                self._pending = ArrivalBatch(*(a[cut:] for a in block))
            break
        return _concat(chunks)


class TraceArrivals:
    """The :class:`WorkloadArrivals` interface over a recorded trace."""

    def __init__(self, times: np.ndarray, clients: np.ndarray,
                 key_idx: np.ndarray, is_write: np.ndarray,
                 keys: Sequence[str]) -> None:
        order = np.argsort(times, kind="stable")
        self._batch = ArrivalBatch(
            np.asarray(times, dtype=float)[order],
            np.asarray(clients, dtype=int)[order],
            np.asarray(key_idx, dtype=int)[order],
            np.asarray(is_write, dtype=bool)[order])
        self.keys = tuple(keys)
        self._cursor = 0
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def generate_until(self, bound: float) -> ArrivalBatch:
        if self._stopped or self._cursor >= self._batch.size:
            return _empty_batch()
        start = self._cursor
        stop = int(np.searchsorted(self._batch.times, bound, side="right"))
        if stop <= start:
            return _empty_batch()
        self._cursor = stop
        return ArrivalBatch(*(a[start:stop] for a in self._batch))
