"""Workload generation: who accesses what, from where, and when.

The paper's evaluation treats all non-candidate nodes as clients with
uniform demand; its future-work section calls for "more realistic
evaluation based on data accesses in actual applications".  This package
provides both:

* :class:`ClientPopulation` — which nodes issue requests and with what
  relative intensity (uniform, region-weighted, or explicitly weighted);
* :class:`ZipfObjectPopularity` — object selection for multi-object
  workloads (web-style skew);
* temporal patterns (:class:`DiurnalPattern`, :class:`FlashCrowd`,
  :class:`RegionalShift`) that modulate client intensity over simulated
  time — the regimes under which gradual migration earns its keep;
* :class:`AccessWorkload` — a simulator process that drives a
  :class:`~repro.store.kvstore.ReplicatedStore` with the above;
* :func:`generate_trace` — the same stream as a pure, replayable list.
"""

from repro.workloads.population import ClientPopulation, ZipfObjectPopularity
from repro.workloads.temporal import (
    ConstantPattern,
    DiurnalPattern,
    FlashCrowd,
    RegionalShift,
    TemporalPattern,
)
from repro.workloads.access import (
    AccessEvent,
    AccessWorkload,
    generate_trace,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.workloads.batched import (
    ArrivalBatch,
    TraceArrivals,
    WorkloadArrivals,
)

__all__ = [
    "ClientPopulation",
    "ZipfObjectPopularity",
    "TemporalPattern",
    "ConstantPattern",
    "DiurnalPattern",
    "FlashCrowd",
    "RegionalShift",
    "AccessEvent",
    "AccessWorkload",
    "generate_trace",
    "load_trace",
    "replay_trace",
    "save_trace",
    "ArrivalBatch",
    "TraceArrivals",
    "WorkloadArrivals",
]
