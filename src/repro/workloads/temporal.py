"""Temporal access patterns: how client intensity changes over time.

A :class:`TemporalPattern` maps ``(time_ms, population)`` to a per-client
modulation vector multiplied into the population's base weights.  The
shifting patterns are what make *gradual* replica migration interesting:
a placement that was optimal for yesterday's population decays, and the
controller should chase the demand.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.net.topology import GeoTopology
from repro.workloads.population import ClientPopulation

__all__ = [
    "TemporalPattern",
    "ConstantPattern",
    "DiurnalPattern",
    "FlashCrowd",
    "RegionalShift",
]

MS_PER_HOUR = 3_600_000.0


class TemporalPattern(ABC):
    """Time-varying per-client intensity modulation."""

    @abstractmethod
    def modulation(self, time_ms: float,
                   population: ClientPopulation) -> np.ndarray:
        """Per-client multipliers at simulated ``time_ms``."""

    def modulation_block(self, times_ms: np.ndarray,
                         population: ClientPopulation) -> np.ndarray:
        """Per-client multipliers for a whole block of timestamps.

        Returns a ``(len(times_ms), len(population))`` matrix whose row
        ``i`` equals ``modulation(times_ms[i], population)`` *bitwise* —
        the batched engine relies on that equality to stay a drop-in
        replacement for the per-event path.  The built-in patterns
        override this with vectorized forms; this fallback simply loops,
        so custom patterns stay correct without extra work.
        """
        times = np.asarray(times_ms, dtype=float)
        if times.size == 0:
            return np.empty((0, len(population)))
        return np.stack([self.modulation(float(t), population)
                         for t in times])


class ConstantPattern(TemporalPattern):
    """No temporal variation (the paper's steady evaluation)."""

    def modulation(self, time_ms: float,
                   population: ClientPopulation) -> np.ndarray:
        return np.ones(len(population))

    def modulation_block(self, times_ms: np.ndarray,
                         population: ClientPopulation) -> np.ndarray:
        times = np.asarray(times_ms, dtype=float)
        return np.ones((times.size, len(population)))


class DiurnalPattern(TemporalPattern):
    """Sinusoidal day/night cycle, phase-shifted per client longitude.

    Each client's intensity follows ``1 + amplitude * sin(...)`` with its
    local solar time, so demand rolls westward around the globe — the
    classic follow-the-sun load curve.
    """

    def __init__(self, topology: GeoTopology, amplitude: float = 0.8,
                 period_hours: float = 24.0) -> None:
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must lie in [0, 1]")
        if period_hours <= 0:
            raise ValueError("period must be positive")
        self.topology = topology
        self.amplitude = amplitude
        self.period_hours = period_hours

    def modulation(self, time_ms: float,
                   population: ClientPopulation) -> np.ndarray:
        hours = time_ms / MS_PER_HOUR
        lon = np.array([self.topology.lon[c] for c in population.clients])
        local_phase = 2.0 * np.pi * (hours / self.period_hours + lon / 360.0)
        return 1.0 + self.amplitude * np.sin(local_phase)

    def modulation_block(self, times_ms: np.ndarray,
                         population: ClientPopulation) -> np.ndarray:
        # Same elementwise formula as the scalar path, broadcast over a
        # (times, clients) grid — every row is bitwise-equal to
        # ``modulation(times_ms[i], ...)``.
        times = np.asarray(times_ms, dtype=float)
        hours = times / MS_PER_HOUR
        lon = np.array([self.topology.lon[c] for c in population.clients])
        local_phase = 2.0 * np.pi * (hours[:, None] / self.period_hours
                                     + lon[None, :] / 360.0)
        return 1.0 + self.amplitude * np.sin(local_phase)


class FlashCrowd(TemporalPattern):
    """A subset of clients spikes by ``multiplier`` during a window."""

    def __init__(self, hot_clients: Sequence[int], start_ms: float,
                 duration_ms: float, multiplier: float = 20.0) -> None:
        if duration_ms <= 0:
            raise ValueError("duration must be positive")
        if multiplier < 1.0:
            raise ValueError("a flash crowd amplifies, multiplier >= 1")
        self.hot_clients = set(int(c) for c in hot_clients)
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.multiplier = multiplier

    def modulation(self, time_ms: float,
                   population: ClientPopulation) -> np.ndarray:
        mod = np.ones(len(population))
        if self.start_ms <= time_ms < self.start_ms + self.duration_ms:
            for i, client in enumerate(population.clients):
                if client in self.hot_clients:
                    mod[i] = self.multiplier
        return mod

    def modulation_block(self, times_ms: np.ndarray,
                         population: ClientPopulation) -> np.ndarray:
        times = np.asarray(times_ms, dtype=float)
        mod = np.ones((times.size, len(population)))
        active = (self.start_ms <= times) & (times < self.start_ms
                                             + self.duration_ms)
        hot = np.array([c in self.hot_clients for c in population.clients])
        if active.any() and hot.any():
            mod[np.ix_(active, hot)] = self.multiplier
        return mod


class RegionalShift(TemporalPattern):
    """Demand migrates linearly from one region to another.

    At ``start_ms`` all modulated demand sits on ``from_region``; by
    ``end_ms`` it has moved to ``to_region``.  Clients in neither region
    keep weight 1.  This is the scenario where a static placement decays
    and the controller must chase the population.
    """

    def __init__(self, topology: GeoTopology, from_region: str,
                 to_region: str, start_ms: float, end_ms: float,
                 intensity: float = 10.0) -> None:
        if end_ms <= start_ms:
            raise ValueError("end must come after start")
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        names = {r.name for r in topology.regions}
        for region in (from_region, to_region):
            if region not in names:
                raise ValueError(f"unknown region {region!r}")
        self.topology = topology
        self.from_region = from_region
        self.to_region = to_region
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.intensity = intensity

    def progress(self, time_ms: float) -> float:
        """Shift completion in [0, 1]."""
        if time_ms <= self.start_ms:
            return 0.0
        if time_ms >= self.end_ms:
            return 1.0
        return (time_ms - self.start_ms) / (self.end_ms - self.start_ms)

    def modulation(self, time_ms: float,
                   population: ClientPopulation) -> np.ndarray:
        p = self.progress(time_ms)
        mod = np.ones(len(population))
        for i, client in enumerate(population.clients):
            region = self.topology.region_name(client)
            if region == self.from_region:
                mod[i] = 1.0 + self.intensity * (1.0 - p)
            elif region == self.to_region:
                mod[i] = 1.0 + self.intensity * p
        return mod

    def modulation_block(self, times_ms: np.ndarray,
                         population: ClientPopulation) -> np.ndarray:
        times = np.asarray(times_ms, dtype=float)
        # Piecewise progress, same division as the scalar path where the
        # shift is underway and exact 0.0/1.0 endpoints outside it.
        p = (times - self.start_ms) / (self.end_ms - self.start_ms)
        p = np.where(times <= self.start_ms, 0.0, p)
        p = np.where(times >= self.end_ms, 1.0, p)
        regions = [self.topology.region_name(c) for c in population.clients]
        from_mask = np.array([r == self.from_region for r in regions])
        to_mask = np.array([r == self.to_region for r in regions])
        mod = np.ones((times.size, len(population)))
        if from_mask.any():
            mod[:, from_mask] = (1.0 + self.intensity * (1.0 - p))[:, None]
        if to_mask.any():
            mod[:, to_mask] = (1.0 + self.intensity * p)[:, None]
        return mod
