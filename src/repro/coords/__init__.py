"""Network coordinate systems (Section III-A of the paper).

A network coordinate system embeds nodes into a low-dimensional space so
that coordinate distance predicts round-trip time.  The paper's placement
algorithm treats users as points in such a space and clusters them; it
uses the authors' RNP system, a retrospective refinement of Vivaldi.

This package implements:

* :class:`EuclideanSpace` — the coordinate space (optionally with Vivaldi
  "height" vectors to model access-link delay);
* :class:`VivaldiNode` — the decentralized spring-relaxation algorithm of
  Dabek et al. (SIGCOMM 2004);
* :class:`RNPNode` — retrospective network positioning: a sliding window
  of weighted measurements is periodically re-fit, improving accuracy and
  stability over plain Vivaldi (see DESIGN.md for the substitution note);
* :func:`embed_landmarks` / :func:`place_with_landmarks` — GNP-style
  landmark embedding (Ng & Zhang, INFOCOM 2002);
* :func:`embed_matrix` — a batch driver that runs gossip rounds over a
  :class:`~repro.net.latency.LatencyMatrix` and returns the coordinates;
* error metrics (relative error, stress, closest-selection accuracy).
"""

from repro.coords.space import EuclideanSpace
from repro.coords.vivaldi import VivaldiNode
from repro.coords.rnp import RNPNode
from repro.coords.gnp import embed_landmarks, place_with_landmarks, gnp_embed
from repro.coords.embedding import EmbeddingResult, embed_matrix, classical_mds
from repro.coords.metrics import (
    absolute_errors,
    closest_selection_accuracy,
    median_absolute_error,
    relative_errors,
    selection_penalty_ms,
    stress,
)

__all__ = [
    "EuclideanSpace",
    "VivaldiNode",
    "RNPNode",
    "embed_landmarks",
    "place_with_landmarks",
    "gnp_embed",
    "EmbeddingResult",
    "embed_matrix",
    "classical_mds",
    "absolute_errors",
    "relative_errors",
    "median_absolute_error",
    "stress",
    "closest_selection_accuracy",
    "selection_penalty_ms",
]
