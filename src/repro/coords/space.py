"""Coordinate spaces for network embeddings.

Coordinates are plain ``numpy`` vectors.  In a *height-vector* space
(Dabek et al., SIGCOMM 2004, §5.4) the last component is a non-negative
"height" modelling access-link delay: the distance between two points is
the Euclidean distance of their planar parts **plus both heights**.

Bulk distance matrices route through :mod:`repro.kernels.wkmeans`
(vectorised or scalar, per the process-wide backend switch) and are
memoized per space instance by a
:class:`~repro.kernels.distcache.PairwiseDistanceCache`: repeated
requests for the same coordinate array — candidate ranking, metric
evaluation, migration-gain prediction — are served as copies of the
cached matrix.  The cache keys on array contents, so refined
coordinates can never be served stale values; call
:meth:`EuclideanSpace.invalidate_cache` after a refinement round to
drop the dead entries eagerly.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import wkmeans as _wk
from repro.kernels.distcache import PairwiseDistanceCache

__all__ = ["EuclideanSpace"]


class EuclideanSpace:
    """A ``dim``-dimensional Euclidean space, optionally with heights.

    Parameters
    ----------
    dim:
        Dimensionality of the planar part of the space.  The paper's
        evaluation (and Vivaldi's) typically uses 2–5 dimensions.
    use_height:
        Append a height component; coordinate vectors then have
        ``dim + 1`` entries and the distance adds both heights.
    cache_size:
        Slots in the per-instance distance-matrix memo (0 disables it).
    """

    def __init__(self, dim: int = 3, use_height: bool = False,
                 cache_size: int = 8) -> None:
        if dim < 1:
            raise ValueError("dimension must be at least 1")
        if cache_size < 0:
            raise ValueError("cache size must be non-negative")
        self.dim = dim
        self.use_height = use_height
        self.cache_size = cache_size
        self._cache = (PairwiseDistanceCache(cache_size) if cache_size
                       else None)

    @property
    def vector_size(self) -> int:
        """Length of a raw coordinate vector in this space."""
        return self.dim + (1 if self.use_height else 0)

    @property
    def cache(self) -> PairwiseDistanceCache | None:
        """The distance-matrix memo (``None`` when disabled)."""
        return self._cache

    def invalidate_cache(self) -> None:
        """Drop memoized matrices (after a coordinate-refinement round)."""
        if self._cache is not None:
            self._cache.invalidate()

    def __getstate__(self) -> dict:
        # The memo never crosses process or cache boundaries: workers
        # rebuild it cold, which keeps pickled worlds small.
        state = self.__dict__.copy()
        state["_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._cache is None and self.cache_size:
            self._cache = PairwiseDistanceCache(self.cache_size)

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def origin(self) -> np.ndarray:
        """The zero coordinate."""
        return np.zeros(self.vector_size)

    def random_point(self, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
        """A random point, used to break symmetry at startup."""
        point = rng.normal(0.0, scale, size=self.vector_size)
        if self.use_height:
            point[-1] = abs(point[-1])
        return point

    def validate(self, point: np.ndarray) -> np.ndarray:
        """Check the shape (and height sign) of ``point``; returns it."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.vector_size,):
            raise ValueError(
                f"expected vector of size {self.vector_size}, got {point.shape}"
            )
        if self.use_height and point[-1] < 0:
            raise ValueError("height component must be non-negative")
        return point

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Predicted RTT between coordinates ``a`` and ``b``."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if self.use_height:
            planar = float(np.linalg.norm(a[:-1] - b[:-1]))
            return planar + float(a[-1]) + float(b[-1])
        return float(np.linalg.norm(a - b))

    def _pairwise(self, points: np.ndarray) -> np.ndarray:
        if self.use_height:
            return _wk.pairwise_distances(points[:, :-1],
                                          heights=points[:, -1])
        return _wk.pairwise_distances(points)

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        """All pairwise predicted RTTs for an ``(n, vector_size)`` array."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if self._cache is None:
            return self._pairwise(points)
        return self._cache.lookup((points,), lambda: self._pairwise(points))

    def _cross(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.use_height:
            return _wk.cross_distances(a[:, :-1], b[:, :-1],
                                       a_heights=a[:, -1],
                                       b_heights=b[:, -1])
        return _wk.cross_distances(a, b)

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Predicted RTTs between each row of ``a`` and each row of ``b``."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        if self._cache is None:
            return self._cross(a, b)
        return self._cache.lookup((a, b), lambda: self._cross(a, b))

    def unit_direction(self, from_point: np.ndarray, to_point: np.ndarray,
                       rng: np.random.Generator | None = None) -> np.ndarray:
        """Unit force direction pushing ``from_point`` away from ``to_point``.

        For height spaces the height component of the direction is ``+1``
        (a spring always pushes a node *up* when it must move away, per
        the Vivaldi height-vector rules).  When the two points coincide a
        random direction is returned so springs can separate them.
        """
        from_point = np.asarray(from_point, dtype=float)
        to_point = np.asarray(to_point, dtype=float)
        if self.use_height:
            planar = from_point[:-1] - to_point[:-1]
            norm = np.linalg.norm(planar)
            if norm < 1e-12:
                rng = rng or np.random.default_rng(0)
                planar = rng.normal(size=self.dim)
                norm = np.linalg.norm(planar)
            direction = np.empty(self.vector_size)
            direction[:-1] = planar / norm
            direction[-1] = 1.0
            return direction
        direction = from_point - to_point
        norm = np.linalg.norm(direction)
        if norm < 1e-12:
            rng = rng or np.random.default_rng(0)
            direction = rng.normal(size=self.vector_size)
            norm = np.linalg.norm(direction)
        return direction / norm

    def clamp(self, point: np.ndarray) -> np.ndarray:
        """Project a raw vector back into the space (heights stay >= 0)."""
        point = np.asarray(point, dtype=float).copy()
        if self.use_height and point[-1] < 0:
            point[-1] = 0.0
        return point

    def __repr__(self) -> str:
        suffix = "+h" if self.use_height else ""
        return f"EuclideanSpace(dim={self.dim}{suffix})"
