"""Coordinate spaces for network embeddings.

Coordinates are plain ``numpy`` vectors.  In a *height-vector* space
(Dabek et al., SIGCOMM 2004, §5.4) the last component is a non-negative
"height" modelling access-link delay: the distance between two points is
the Euclidean distance of their planar parts **plus both heights**.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EuclideanSpace"]


class EuclideanSpace:
    """A ``dim``-dimensional Euclidean space, optionally with heights.

    Parameters
    ----------
    dim:
        Dimensionality of the planar part of the space.  The paper's
        evaluation (and Vivaldi's) typically uses 2–5 dimensions.
    use_height:
        Append a height component; coordinate vectors then have
        ``dim + 1`` entries and the distance adds both heights.
    """

    def __init__(self, dim: int = 3, use_height: bool = False) -> None:
        if dim < 1:
            raise ValueError("dimension must be at least 1")
        self.dim = dim
        self.use_height = use_height

    @property
    def vector_size(self) -> int:
        """Length of a raw coordinate vector in this space."""
        return self.dim + (1 if self.use_height else 0)

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def origin(self) -> np.ndarray:
        """The zero coordinate."""
        return np.zeros(self.vector_size)

    def random_point(self, rng: np.random.Generator, scale: float = 1.0) -> np.ndarray:
        """A random point, used to break symmetry at startup."""
        point = rng.normal(0.0, scale, size=self.vector_size)
        if self.use_height:
            point[-1] = abs(point[-1])
        return point

    def validate(self, point: np.ndarray) -> np.ndarray:
        """Check the shape (and height sign) of ``point``; returns it."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.vector_size,):
            raise ValueError(
                f"expected vector of size {self.vector_size}, got {point.shape}"
            )
        if self.use_height and point[-1] < 0:
            raise ValueError("height component must be non-negative")
        return point

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Predicted RTT between coordinates ``a`` and ``b``."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if self.use_height:
            planar = float(np.linalg.norm(a[:-1] - b[:-1]))
            return planar + float(a[-1]) + float(b[-1])
        return float(np.linalg.norm(a - b))

    def pairwise_distances(self, points: np.ndarray) -> np.ndarray:
        """All pairwise predicted RTTs for an ``(n, vector_size)`` array."""
        points = np.asarray(points, dtype=float)
        if self.use_height:
            planar = points[:, :-1]
            heights = points[:, -1]
            diff = planar[:, None, :] - planar[None, :, :]
            d = np.linalg.norm(diff, axis=-1) + heights[:, None] + heights[None, :]
        else:
            diff = points[:, None, :] - points[None, :, :]
            d = np.linalg.norm(diff, axis=-1)
        np.fill_diagonal(d, 0.0)
        return d

    def cross_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Predicted RTTs between each row of ``a`` and each row of ``b``."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        if self.use_height:
            planar = np.linalg.norm(a[:, None, :-1] - b[None, :, :-1], axis=-1)
            return planar + a[:, -1][:, None] + b[:, -1][None, :]
        return np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)

    def unit_direction(self, from_point: np.ndarray, to_point: np.ndarray,
                       rng: np.random.Generator | None = None) -> np.ndarray:
        """Unit force direction pushing ``from_point`` away from ``to_point``.

        For height spaces the height component of the direction is ``+1``
        (a spring always pushes a node *up* when it must move away, per
        the Vivaldi height-vector rules).  When the two points coincide a
        random direction is returned so springs can separate them.
        """
        from_point = np.asarray(from_point, dtype=float)
        to_point = np.asarray(to_point, dtype=float)
        if self.use_height:
            planar = from_point[:-1] - to_point[:-1]
            norm = np.linalg.norm(planar)
            if norm < 1e-12:
                rng = rng or np.random.default_rng(0)
                planar = rng.normal(size=self.dim)
                norm = np.linalg.norm(planar)
            direction = np.empty(self.vector_size)
            direction[:-1] = planar / norm
            direction[-1] = 1.0
            return direction
        direction = from_point - to_point
        norm = np.linalg.norm(direction)
        if norm < 1e-12:
            rng = rng or np.random.default_rng(0)
            direction = rng.normal(size=self.vector_size)
            norm = np.linalg.norm(direction)
        return direction / norm

    def clamp(self, point: np.ndarray) -> np.ndarray:
        """Project a raw vector back into the space (heights stay >= 0)."""
        point = np.asarray(point, dtype=float).copy()
        if self.use_height and point[-1] < 0:
            point[-1] = 0.0
        return point

    def __repr__(self) -> str:
        suffix = "+h" if self.use_height else ""
        return f"EuclideanSpace(dim={self.dim}{suffix})"
