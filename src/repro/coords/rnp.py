"""RNP: Retrospective Network Positioning.

The paper assigns coordinates with RNP (Ping, McConnell & Hwang,
GridPeer 2010), the authors' refinement of Vivaldi.  RNP's key idea is to
be *retrospective*: instead of consuming each measurement once and
discarding it, a node retains a window of recent measurements and
periodically re-solves its own coordinates against all of them, weighting
each sample by how trustworthy it is.  This yields lower prediction error
(typically < 10 ms) and far more stable coordinates than memoryless
Vivaldi, especially on noisy platforms such as PlanetLab.

The original paper is not freely available, so this implementation
follows that published description (see DESIGN.md §2): it keeps Vivaldi's
incremental update as the fast path, records ``(remote coords, rtt,
remote confidence)`` samples in a sliding window, and every
``refit_interval`` updates performs a weighted non-linear least-squares
refit of its own coordinate over the window.  Sample weights combine the
remote node's confidence at measurement time with an exponential recency
decay.  The benchmark ``benchmarks/test_coords_accuracy.py`` verifies the
contract the placement algorithm relies on: RNP error below Vivaldi's and
a sub-10 ms median on the synthetic PlanetLab matrix.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.coords.space import EuclideanSpace
from repro.coords.vivaldi import VivaldiNode

__all__ = ["RNPNode"]


@dataclass(frozen=True)
class _Sample:
    """One retained measurement."""

    remote_coords: np.ndarray
    rtt: float
    remote_error: float
    seq: int


class RNPNode:
    """One node running Retrospective Network Positioning.

    Parameters
    ----------
    space:
        Shared coordinate space.
    window:
        Number of most recent measurements retained for refits.
    refit_interval:
        A retrospective refit runs every this-many updates.
    refit_steps:
        Gradient-descent steps per refit (the problem is tiny: one point
        against ``window`` anchors, so a handful of steps suffices).
    recency_half_life:
        Sample weight halves every this-many sequence numbers.
    cc / ce / rng:
        Passed through to the underlying Vivaldi fast path.
    """

    def __init__(self, space: EuclideanSpace, window: int = 64,
                 refit_interval: int = 8, refit_steps: int = 12,
                 recency_half_life: float = 64.0,
                 cc: float = 0.25, ce: float = 0.25,
                 rng: np.random.Generator | None = None) -> None:
        if window < 2:
            raise ValueError("window must hold at least two samples")
        if refit_interval < 1:
            raise ValueError("refit interval must be positive")
        if recency_half_life <= 0:
            raise ValueError("recency half life must be positive")
        self.space = space
        self.window = window
        self.refit_interval = refit_interval
        self.refit_steps = refit_steps
        self.recency_half_life = recency_half_life
        self._vivaldi = VivaldiNode(space, cc=cc, ce=ce, rng=rng)
        self._samples: deque[_Sample] = deque(maxlen=window)
        self._seq = 0
        #: Measurements judged transient outliers (recorded but not fed
        #: to the incremental spring update).
        self.outliers_suspected = 0

    # ------------------------------------------------------------------
    # Vivaldi-compatible surface
    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """Current coordinate estimate."""
        return self._vivaldi.coords

    @property
    def error(self) -> float:
        """Current confidence estimate (Vivaldi-style relative error)."""
        return self._vivaldi.error

    @property
    def updates(self) -> int:
        """Number of measurements consumed."""
        return self._seq

    def predicted_rtt(self, remote_coords: np.ndarray) -> float:
        """Predict the RTT to a node at ``remote_coords``."""
        return self.space.distance(self.coords, remote_coords)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, remote_coords: np.ndarray, remote_error: float, rtt: float) -> None:
        """Incorporate one measurement; refit retrospectively on schedule.

        This is where RNP "consumes information differently according to
        the reliability of the information": once enough history exists,
        a measurement wildly *above* the current prediction (transient
        congestion — queueing only ever inflates RTT) is retained for
        the retrospective refit, where robust weighting discounts it,
        but is not allowed to yank the coordinate via the memoryless
        spring update the way it would in plain Vivaldi.
        """
        if rtt <= 0:
            raise ValueError("RTT must be positive")
        remote_coords = np.asarray(remote_coords, dtype=float).copy()
        self._seq += 1
        self._samples.append(
            _Sample(remote_coords, float(rtt), float(remote_error), self._seq)
        )
        predicted = self.predicted_rtt(remote_coords)
        suspicious = (
            len(self._samples) >= 8
            and self._vivaldi.error < 0.4      # only once well converged
            and predicted > 1e-6
            and rtt > max(3.0 * predicted, predicted + 150.0)
        )
        if suspicious:
            self.outliers_suspected += 1
        else:
            # Fast path: the usual spring nudge keeps coordinates live
            # between refits.
            self._vivaldi.update(remote_coords, remote_error, rtt)
        if self._seq % self.refit_interval == 0 and len(self._samples) >= 4:
            self._refit()

    def _sample_weights(self) -> np.ndarray:
        """Confidence * recency weight per retained sample."""
        seqs = np.array([s.seq for s in self._samples], dtype=float)
        errors = np.array([s.remote_error for s in self._samples], dtype=float)
        age = self._seq - seqs
        recency = np.power(0.5, age / self.recency_half_life)
        confidence = 1.0 / (1.0 + errors)
        return recency * confidence

    def _refit(self) -> None:
        """Weighted least-squares refit of this node's coordinate.

        Minimizes ``sum_i w_i (dist(x, a_i) - rtt_i)^2`` over x, where the
        anchors ``a_i`` are the remote coordinates observed at measurement
        time.  A few damped gradient steps from the current coordinate
        are enough; the step is rejected if it does not reduce the loss,
        which preserves coordinate stability (RNP's second goal).
        """
        anchors = np.stack([s.remote_coords for s in self._samples])
        rtts = np.array([s.rtt for s in self._samples])
        base_weights = self._sample_weights()
        base_weights = base_weights / base_weights.sum()

        x = self.coords.copy()
        weights = base_weights
        # IRLS: after a first fit, one-sidedly discount the samples the
        # fit cannot explain from *below* — a measured RTT far above the
        # fitted distance is transient congestion (queueing only ever
        # inflates), so it should not shape the coordinate.
        for irls_round in range(2):
            loss = self._loss(x, anchors, rtts, weights)
            step = 0.5
            for _ in range(self.refit_steps):
                grad = self._grad(x, anchors, rtts, weights)
                gnorm = np.linalg.norm(grad)
                if gnorm < 1e-9:
                    break
                candidate = self.space.clamp(x - step * grad)
                candidate_loss = self._loss(candidate, anchors, rtts, weights)
                if candidate_loss < loss:
                    x, loss = candidate, candidate_loss
                    step *= 1.2
                else:
                    step *= 0.5
                    if step < 1e-4:
                        break
            if irls_round == 0:
                pred = self._predictions(x, anchors)
                inflation = (rtts - pred) / np.maximum(pred, 1e-9)
                trimmed = base_weights * np.where(inflation > 1.0, 0.02, 1.0)
                total = trimmed.sum()
                if total < 0.25:  # almost everything trimmed: fit is lost,
                    break         # keep the untrimmed solution instead
                weights = trimmed / total

        # Accept the refit only if it does not worsen the robustly
        # weighted fit of the *reliable* samples.
        old_loss = self._loss(self.coords, anchors, rtts, weights)
        new_loss = self._loss(x, anchors, rtts, weights)
        if new_loss <= old_loss:
            self._vivaldi.coords = x
        else:
            x = self.coords

        # Refresh the confidence estimate from the achieved fit quality.
        fitted = self._predictions(x, anchors)
        rel = np.abs(fitted - rtts) / np.maximum(rtts, 1e-9)
        fit_error = float(np.sum(weights * rel))
        self._vivaldi.error = min(self._vivaldi.error, max(fit_error, 1e-3))

    # -- least squares helpers ----------------------------------------
    def _predictions(self, x: np.ndarray, anchors: np.ndarray) -> np.ndarray:
        return self.space.cross_distances(x[None, :], anchors)[0]

    def _loss(self, x: np.ndarray, anchors: np.ndarray, rtts: np.ndarray,
              weights: np.ndarray) -> float:
        resid = self._predictions(x, anchors) - rtts
        return float(np.sum(weights * resid * resid))

    def _grad(self, x: np.ndarray, anchors: np.ndarray, rtts: np.ndarray,
              weights: np.ndarray) -> np.ndarray:
        pred = self._predictions(x, anchors)
        resid = pred - rtts
        grad = np.zeros_like(x)
        if self.space.use_height:
            planar_diff = x[None, :-1] - anchors[:, :-1]
            norms = np.maximum(np.linalg.norm(planar_diff, axis=1), 1e-9)
            coeff = 2.0 * weights * resid
            grad[:-1] = (coeff[:, None] * planar_diff / norms[:, None]).sum(axis=0)
            grad[-1] = coeff.sum()
        else:
            diff = x[None, :] - anchors
            norms = np.maximum(np.linalg.norm(diff, axis=1), 1e-9)
            coeff = 2.0 * weights * resid
            grad = (coeff[:, None] * diff / norms[:, None]).sum(axis=0)
        return grad
