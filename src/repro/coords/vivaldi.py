"""Vivaldi: decentralized network coordinates (Dabek et al., SIGCOMM 2004).

Each node maintains a coordinate and a confidence estimate.  On every
measurement to a remote node it nudges its coordinate along the spring
force between the two points, with a step size that shrinks as the node
becomes confident and grows when the remote node is confident.
"""

from __future__ import annotations

import numpy as np

from repro.coords.space import EuclideanSpace

__all__ = ["VivaldiNode"]


class VivaldiNode:
    """One node running the adaptive-timestep Vivaldi algorithm.

    Parameters
    ----------
    space:
        Coordinate space shared by all nodes.
    cc:
        Tuning constant for the coordinate timestep (paper value 0.25).
    ce:
        Tuning constant for the error estimate update (paper value 0.25).
    rng:
        Randomness used only to break ties when points coincide and for
        the initial coordinate.
    """

    def __init__(self, space: EuclideanSpace, cc: float = 0.25, ce: float = 0.25,
                 rng: np.random.Generator | None = None) -> None:
        if not 0 < cc <= 1 or not 0 < ce <= 1:
            raise ValueError("cc and ce must lie in (0, 1]")
        self.space = space
        self.cc = cc
        self.ce = ce
        self._rng = rng or np.random.default_rng(0)
        # Starting all nodes at the origin is valid Vivaldi (forces are
        # randomized when points coincide) but a tiny random start
        # converges faster in batch simulation.
        self.coords = space.random_point(self._rng, scale=1e-3)
        #: Relative error estimate in [0, max]; 1.0 means "no idea yet".
        self.error = 1.0
        self.updates = 0

    def update(self, remote_coords: np.ndarray, remote_error: float, rtt: float) -> None:
        """Incorporate one RTT measurement to a remote node.

        Parameters
        ----------
        remote_coords:
            The remote node's current coordinates.
        remote_error:
            The remote node's confidence (its ``error`` attribute).
        rtt:
            Measured round-trip time in milliseconds (must be positive).
        """
        if rtt <= 0:
            raise ValueError("RTT must be positive")
        remote_coords = np.asarray(remote_coords, dtype=float)
        predicted = self.space.distance(self.coords, remote_coords)

        # Weight: balance of local vs remote confidence.
        denom = self.error + remote_error
        w = self.error / denom if denom > 0 else 0.5

        # Update the error estimate with an EWMA weighted by confidence.
        sample_error = abs(predicted - rtt) / rtt
        self.error = sample_error * self.ce * w + self.error * (1.0 - self.ce * w)
        self.error = float(min(self.error, 2.0))

        # Move along the spring force.
        delta = self.cc * w
        direction = self.space.unit_direction(self.coords, remote_coords, self._rng)
        self.coords = self.space.clamp(
            self.coords + delta * (rtt - predicted) * direction
        )
        self.updates += 1

    def predicted_rtt(self, remote_coords: np.ndarray) -> float:
        """Predict the RTT to a node at ``remote_coords``."""
        return self.space.distance(self.coords, remote_coords)
