"""GNP: Global Network Positioning (Ng & Zhang, INFOCOM 2002).

GNP is the landmark-based predecessor of decentralized systems like
Vivaldi: a small set of landmark nodes first embeds itself by minimizing
pairwise embedding error, then every other node solves for its own
coordinate against the fixed landmark coordinates.  It is included both
as a baseline coordinate system and because the paper's related-work
section contrasts RNP with it.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.coords.space import EuclideanSpace

__all__ = ["embed_landmarks", "place_with_landmarks", "gnp_embed"]


def _relative_sq_error(pred: np.ndarray, actual: np.ndarray) -> float:
    """GNP's objective: sum of squared *relative* errors."""
    actual = np.maximum(actual, 1e-9)
    rel = (pred - actual) / actual
    return float(np.sum(rel * rel))


def embed_landmarks(landmark_rtts: np.ndarray, space: EuclideanSpace,
                    rng: np.random.Generator | None = None,
                    restarts: int = 4) -> np.ndarray:
    """Embed the landmark set by joint error minimization.

    Parameters
    ----------
    landmark_rtts:
        ``(L, L)`` symmetric RTT matrix between the landmarks.
    space:
        Target coordinate space (heights are not used for landmarks; GNP
        predates the height-vector model).
    restarts:
        Number of random restarts; the best embedding wins.

    Returns
    -------
    ``(L, vector_size)`` landmark coordinates.
    """
    landmark_rtts = np.asarray(landmark_rtts, dtype=float)
    n = landmark_rtts.shape[0]
    if landmark_rtts.shape != (n, n):
        raise ValueError("landmark RTT matrix must be square")
    if n < space.dim + 1:
        raise ValueError(
            f"need at least dim+1={space.dim + 1} landmarks, got {n}"
        )
    rng = rng or np.random.default_rng(0)
    iu = np.triu_indices(n, k=1)
    actual = landmark_rtts[iu]
    scale = float(np.median(actual)) or 1.0

    def objective(flat: np.ndarray) -> float:
        points = flat.reshape(n, space.vector_size)
        pred = space.pairwise_distances(points)[iu]
        return _relative_sq_error(pred, actual)

    best_points = None
    best_value = np.inf
    for _ in range(restarts):
        x0 = rng.normal(0.0, scale / 2.0, size=n * space.vector_size)
        result = optimize.minimize(objective, x0, method="Nelder-Mead",
                                   options={"maxiter": 4000, "fatol": 1e-6})
        if result.fun < best_value:
            best_value = result.fun
            best_points = result.x.reshape(n, space.vector_size)
    assert best_points is not None
    if space.use_height:
        best_points[:, -1] = np.abs(best_points[:, -1])
    return best_points


def place_with_landmarks(landmark_coords: np.ndarray, rtts_to_landmarks: np.ndarray,
                         space: EuclideanSpace,
                         rng: np.random.Generator | None = None,
                         restarts: int = 3) -> np.ndarray:
    """Solve one ordinary node's coordinate against fixed landmarks."""
    landmark_coords = np.asarray(landmark_coords, dtype=float)
    rtts = np.asarray(rtts_to_landmarks, dtype=float)
    if landmark_coords.shape[0] != rtts.shape[0]:
        raise ValueError("one RTT per landmark required")
    rng = rng or np.random.default_rng(0)
    scale = float(np.median(rtts)) or 1.0

    def objective(x: np.ndarray) -> float:
        pred = space.cross_distances(x[None, :], landmark_coords)[0]
        return _relative_sq_error(pred, rtts)

    best = None
    best_value = np.inf
    seeds = [landmark_coords.mean(axis=0)]
    seeds += [rng.normal(0.0, scale / 2.0, size=space.vector_size)
              for _ in range(restarts - 1)]
    for x0 in seeds:
        result = optimize.minimize(objective, x0, method="Nelder-Mead",
                                   options={"maxiter": 2000, "fatol": 1e-6})
        if result.fun < best_value:
            best_value = result.fun
            best = result.x
    assert best is not None
    return space.clamp(best)


def gnp_embed(rtt: np.ndarray, space: EuclideanSpace, n_landmarks: int = 15,
              rng: np.random.Generator | None = None) -> np.ndarray:
    """Embed a full RTT matrix GNP-style.

    ``n_landmarks`` nodes are chosen at random as landmarks, embedded
    jointly, and every remaining node is placed against them.

    Returns ``(n, vector_size)`` coordinates for all nodes.
    """
    rtt = np.asarray(rtt, dtype=float)
    n = rtt.shape[0]
    rng = rng or np.random.default_rng(0)
    n_landmarks = min(n_landmarks, n)
    landmarks = rng.choice(n, size=n_landmarks, replace=False)
    landmark_coords = embed_landmarks(rtt[np.ix_(landmarks, landmarks)], space, rng)

    coords = np.zeros((n, space.vector_size))
    coords[landmarks] = landmark_coords
    others = np.setdiff1d(np.arange(n), landmarks)
    for node in others:
        coords[node] = place_with_landmarks(
            landmark_coords, rtt[node, landmarks], space, rng
        )
    return coords
