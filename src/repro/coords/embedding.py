"""Batch embedding of an RTT matrix with a chosen coordinate system.

The simulator runs coordinate updates as live gossip; this module offers
the equivalent batch driver used by experiments and tests: run ``rounds``
rounds in which every node measures a random peer and updates, then
return the final coordinates.  It also provides classical MDS as an
idealized (centralized, offline) embedding for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.coords.gnp import gnp_embed
from repro.coords.rnp import RNPNode
from repro.coords.space import EuclideanSpace
from repro.coords.vivaldi import VivaldiNode
from repro.net.latency import LatencyMatrix

__all__ = ["EmbeddingResult", "embed_matrix", "classical_mds"]

SystemName = Literal["vivaldi", "rnp", "gnp", "mds"]


@dataclass(frozen=True)
class EmbeddingResult:
    """Coordinates produced by :func:`embed_matrix`.

    Attributes
    ----------
    coords:
        ``(n, vector_size)`` coordinate array, row per node.
    space:
        The space the coordinates live in.
    system:
        Which algorithm produced them.
    stability_ms_per_round:
        Mean per-node coordinate displacement per gossip round over the
        second half of the run (``None`` for the batch systems).  This
        is RNP's second published metric: on a converged system nodes
        should *stop moving* even though noisy measurements keep
        arriving, because jumpy coordinates invalidate every cached
        prediction in the system.
    """

    coords: np.ndarray
    space: EuclideanSpace
    system: str
    stability_ms_per_round: float | None = None

    def predicted_matrix(self) -> np.ndarray:
        """All pairwise predicted RTTs."""
        return self.space.pairwise_distances(self.coords)

    def coord_of(self, node: int) -> np.ndarray:
        """Coordinate vector of ``node``."""
        return self.coords[node]


def embed_matrix(matrix: LatencyMatrix, system: SystemName = "rnp",
                 space: EuclideanSpace | None = None, rounds: int = 60,
                 rng: np.random.Generator | None = None,
                 outlier_fraction: float = 0.0,
                 outlier_multiplier: float = 10.0,
                 **system_kwargs) -> EmbeddingResult:
    """Embed all nodes of ``matrix`` and return their coordinates.

    Parameters
    ----------
    matrix:
        Ground-truth RTTs.
    system:
        ``"vivaldi"``, ``"rnp"``, ``"gnp"`` or ``"mds"``.
    space:
        Coordinate space; defaults to 3-D Euclidean with height for the
        decentralized systems (Vivaldi's recommended configuration) and
        without height for GNP/MDS.
    rounds:
        Gossip rounds for the decentralized systems.  Each round lets
        every node measure one uniformly random peer.
    rng:
        Randomness (peer choice, initial coordinates, optimizer seeds).
    outlier_fraction:
        Probability that an individual *measurement* (not a pair) is an
        outlier, multiplied by ``outlier_multiplier``.  Models the
        transient congestion spikes of overloaded PlanetLab hosts — the
        instability RNP was designed to survive.  Only applies to the
        decentralized systems (GNP/MDS consume the clean matrix; they
        are offline references).  Accuracy is always scored against the
        *clean* matrix.
    system_kwargs:
        Extra keyword arguments for the node constructor (e.g. RNP's
        ``window``).
    """
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier fraction must lie in [0, 1)")
    if outlier_multiplier < 1.0:
        raise ValueError("outliers only inflate measurements")
    rng = rng or np.random.default_rng(0)
    n = matrix.n

    if system == "mds":
        space = space or EuclideanSpace(dim=3, use_height=False)
        if space.use_height:
            raise ValueError("MDS embedding does not produce heights")
        coords = classical_mds(matrix.rtt, dim=space.dim)
        return EmbeddingResult(coords, space, "mds")

    if system == "gnp":
        space = space or EuclideanSpace(dim=3, use_height=False)
        coords = gnp_embed(matrix.rtt, space, rng=rng, **system_kwargs)
        return EmbeddingResult(coords, space, "gnp")

    space = space or EuclideanSpace(dim=3, use_height=True)
    if system == "vivaldi":
        nodes = [VivaldiNode(space, rng=rng, **system_kwargs) for _ in range(n)]
    elif system == "rnp":
        nodes = [RNPNode(space, rng=rng, **system_kwargs) for _ in range(n)]
    else:
        raise ValueError(f"unknown coordinate system {system!r}")

    warmup = rounds // 2
    displacements: list[float] = []
    previous: np.ndarray | None = None
    for round_index in range(rounds):
        # Every node measures one random distinct peer per round; using a
        # permutation avoids pathological self-pairs cheaply.
        peers = rng.integers(0, n - 1, size=n)
        peers = peers + (peers >= np.arange(n))
        for i in range(n):
            j = int(peers[i])
            sample = matrix.latency(i, j)
            if outlier_fraction > 0 and rng.random() < outlier_fraction:
                sample *= outlier_multiplier
            nodes[i].update(nodes[j].coords, nodes[j].error, sample)
        # Every node just moved: any memoized distance matrix for the
        # previous round's coordinates is dead weight now.
        space.invalidate_cache()
        if round_index >= warmup:
            snapshot = np.stack([node.coords for node in nodes])
            if previous is not None:
                # Displacement of one node: planar movement plus height
                # change (the height-space distance formula would add
                # both heights even for a motionless node).
                diff = snapshot - previous
                if space.use_height:
                    moves = (np.linalg.norm(diff[:, :-1], axis=1)
                             + np.abs(diff[:, -1]))
                else:
                    moves = np.linalg.norm(diff, axis=1)
                displacements.append(float(moves.mean()))
            previous = snapshot

    coords = np.stack([node.coords for node in nodes])
    stability = float(np.mean(displacements)) if displacements else None
    return EmbeddingResult(coords, space, system, stability)


def classical_mds(rtt: np.ndarray, dim: int = 3) -> np.ndarray:
    """Classical (Torgerson) multidimensional scaling of an RTT matrix.

    A centralized, offline embedding that serves as an accuracy
    reference: it is the best rank-``dim`` Euclidean fit to the doubly
    centered squared-distance matrix.
    """
    rtt = np.asarray(rtt, dtype=float)
    n = rtt.shape[0]
    if dim >= n:
        raise ValueError("dim must be smaller than the number of nodes")
    sq = rtt ** 2
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ sq @ centering
    eigvals, eigvecs = np.linalg.eigh(b)
    order = np.argsort(eigvals)[::-1][:dim]
    vals = np.clip(eigvals[order], 0.0, None)
    return eigvecs[:, order] * np.sqrt(vals)[None, :]
