"""Accuracy metrics for coordinate embeddings.

The placement algorithm only needs coordinates to (a) cluster users by
network proximity and (b) let a user pick its lowest-latency replica.
These metrics quantify both: pairwise prediction error for (a) and
closest-selection accuracy for (b) — the property Section III-A of the
paper highlights ("predict the closest replica with a high accuracy").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coords.space import EuclideanSpace
from repro.net.latency import LatencyMatrix

__all__ = [
    "relative_errors",
    "absolute_errors",
    "median_absolute_error",
    "stress",
    "closest_selection_accuracy",
    "selection_penalty_ms",
]


def _predicted(matrix: LatencyMatrix, coords: np.ndarray, space: EuclideanSpace
               ) -> tuple[np.ndarray, np.ndarray]:
    """(predicted, actual) pair vectors over the upper triangle."""
    pred = space.pairwise_distances(np.asarray(coords, dtype=float))
    iu = np.triu_indices(matrix.n, k=1)
    return pred[iu], matrix.rtt[iu]


def absolute_errors(matrix: LatencyMatrix, coords: np.ndarray,
                    space: EuclideanSpace) -> np.ndarray:
    """Per-pair ``|predicted - actual|`` in milliseconds."""
    pred, actual = _predicted(matrix, coords, space)
    return np.abs(pred - actual)


def relative_errors(matrix: LatencyMatrix, coords: np.ndarray,
                    space: EuclideanSpace) -> np.ndarray:
    """Per-pair ``|predicted - actual| / actual`` (Vivaldi's metric)."""
    pred, actual = _predicted(matrix, coords, space)
    return np.abs(pred - actual) / np.maximum(actual, 1e-9)


def median_absolute_error(matrix: LatencyMatrix, coords: np.ndarray,
                          space: EuclideanSpace) -> float:
    """Median absolute prediction error in milliseconds.

    RNP's published contract is a median below ~10 ms on PlanetLab.
    """
    return float(np.median(absolute_errors(matrix, coords, space)))


def stress(matrix: LatencyMatrix, coords: np.ndarray, space: EuclideanSpace) -> float:
    """Kruskal stress-1 of the embedding (0 is a perfect fit)."""
    pred, actual = _predicted(matrix, coords, space)
    denom = float(np.sum(actual * actual))
    if denom == 0:
        return 0.0
    return float(np.sqrt(np.sum((pred - actual) ** 2) / denom))


def closest_selection_accuracy(matrix: LatencyMatrix, coords: np.ndarray,
                               space: EuclideanSpace,
                               clients: Sequence[int],
                               candidates: Sequence[int]) -> float:
    """Fraction of clients whose predicted-closest candidate is truly closest.

    This is the operation users perform in the paper: given replica
    locations (``candidates``), choose where to fetch from using only
    coordinates.
    """
    clients = list(clients)
    candidates = list(candidates)
    if not clients or not candidates:
        raise ValueError("clients and candidates must be non-empty")
    coords = np.asarray(coords, dtype=float)
    pred = space.cross_distances(coords[clients], coords[candidates])
    true = matrix.rows(clients, candidates)
    predicted_choice = np.argmin(pred, axis=1)
    # A prediction is correct when the chosen candidate attains the true
    # minimum (ties count as correct).
    chosen_true = true[np.arange(len(clients)), predicted_choice]
    best_true = true.min(axis=1)
    return float(np.mean(np.isclose(chosen_true, best_true)))


def selection_penalty_ms(matrix: LatencyMatrix, coords: np.ndarray,
                         space: EuclideanSpace,
                         clients: Sequence[int],
                         candidates: Sequence[int]) -> float:
    """Mean extra latency from trusting coordinates for replica selection.

    Zero when every client's coordinate-predicted choice is also its
    true-latency optimum.
    """
    clients = list(clients)
    candidates = list(candidates)
    coords = np.asarray(coords, dtype=float)
    pred = space.cross_distances(coords[clients], coords[candidates])
    true = matrix.rows(clients, candidates)
    predicted_choice = np.argmin(pred, axis=1)
    chosen_true = true[np.arange(len(clients)), predicted_choice]
    return float(np.mean(chosen_true - true.min(axis=1)))
